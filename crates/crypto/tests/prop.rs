//! Property-based tests for the crypto substrate.

use msb_crypto::aes::{Aes128, Aes256, BlockCipher};
use msb_crypto::kdf;
use msb_crypto::modes::{cbc_decrypt, cbc_encrypt, Ctr};
use msb_crypto::sha256::Sha256;
use proptest::prelude::*;

proptest! {
    #[test]
    fn aes256_block_roundtrip(key in any::<[u8; 32]>(), block in any::<[u8; 16]>()) {
        let cipher = Aes256::new(&key);
        let mut b = block;
        cipher.encrypt_block(&mut b);
        cipher.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn aes128_block_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let cipher = Aes128::new(&key);
        let mut b = block;
        cipher.encrypt_block(&mut b);
        cipher.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn aes_keys_differ_blocks_differ(k1 in any::<[u8; 32]>(), k2 in any::<[u8; 32]>(), block in any::<[u8; 16]>()) {
        prop_assume!(k1 != k2);
        let mut b1 = block;
        let mut b2 = block;
        Aes256::new(&k1).encrypt_block(&mut b1);
        Aes256::new(&k2).encrypt_block(&mut b2);
        prop_assert_ne!(b1, b2); // equal only with probability 2^-128
    }

    #[test]
    fn ctr_streaming_chunks_match_oneshot(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 16]>(),
        data in proptest::collection::vec(any::<u8>(), 1..300),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..4),
    ) {
        let cipher = Aes256::new(&key);
        let mut oneshot = data.clone();
        Ctr::new(&cipher, nonce).apply_keystream(&mut oneshot);

        let mut cut_points: Vec<usize> = cuts.iter().map(|c| c.index(data.len())).collect();
        cut_points.sort_unstable();
        cut_points.dedup();
        let mut chunked = data.clone();
        let mut ctr = Ctr::new(&cipher, nonce);
        let mut prev = 0;
        for &cut in &cut_points {
            ctr.apply_keystream(&mut chunked[prev..cut]);
            prev = cut;
        }
        ctr.apply_keystream(&mut chunked[prev..]);
        prop_assert_eq!(chunked, oneshot);
    }

    #[test]
    fn cbc_ciphertext_longer_and_block_aligned(
        key in any::<[u8; 32]>(),
        iv in any::<[u8; 16]>(),
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let cipher = Aes256::new(&key);
        let ct = cbc_encrypt(&cipher, iv, &data);
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert!(ct.len() > data.len());
        prop_assert_eq!(cbc_decrypt(&cipher, iv, &ct).unwrap(), data);
    }

    #[test]
    fn cbc_iv_matters(
        key in any::<[u8; 32]>(),
        iv1 in any::<[u8; 16]>(),
        iv2 in any::<[u8; 16]>(),
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(iv1 != iv2);
        let cipher = Aes256::new(&key);
        prop_assert_ne!(cbc_encrypt(&cipher, iv1, &data), cbc_encrypt(&cipher, iv2, &data));
    }

    #[test]
    fn sha256_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..256), flip in any::<prop::sample::Index>()) {
        let d1 = Sha256::digest(&data);
        prop_assert_eq!(d1, Sha256::digest(&data));
        if !data.is_empty() {
            let mut tampered = data.clone();
            let i = flip.index(tampered.len());
            tampered[i] ^= 1;
            prop_assert_ne!(d1, Sha256::digest(&tampered));
        }
    }

    #[test]
    fn hkdf_lengths_and_prefix_property(
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        len1 in 1usize..64,
        len2 in 1usize..64,
    ) {
        // HKDF output for the same inputs is prefix-consistent.
        let long = kdf::hkdf(b"salt", &ikm, b"info", len1.max(len2));
        let short = kdf::hkdf(b"salt", &ikm, b"info", len1.min(len2));
        prop_assert_eq!(&long[..short.len()], &short[..]);
        prop_assert_eq!(long.len(), len1.max(len2));
    }

    #[test]
    fn ct_eq_agrees_with_eq(a in proptest::collection::vec(any::<u8>(), 0..64), b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(msb_crypto::ct::eq(&a, &b), a == b);
    }
}
