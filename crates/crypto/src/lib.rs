//! From-scratch symmetric cryptography substrate for the Sealed Bottle
//! protocols.
//!
//! The paper (Zhang & Li, ICDCS'13) builds its entire private-matching
//! mechanism out of two symmetric primitives — SHA-256 and AES-256 — plus a
//! handful of derived constructions (HMAC for message authentication, HKDF
//! for session-key derivation). This crate implements all of them from the
//! FIPS specifications, with no external cryptography dependencies, and
//! validates them against the official NIST test vectors in the unit tests.
//!
//! # Modules
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, incremental and one-shot, with
//!   midstate cloning and 4-way multi-buffer [`sha256::Sha256::digest_many`].
//! * [`aes`] — FIPS 197 AES-128/AES-256 with two selectable backends
//!   ([`aes::CipherBackend`]): the S-box differential oracle (default)
//!   and a T-table backend with the equivalent-inverse-cipher decrypt
//!   schedule.
//! * [`modes`] — CTR and CBC (PKCS#7) modes of operation.
//! * [`hmac`] — RFC 2104 HMAC-SHA256 (ipad/opad kept as midstates).
//! * [`kdf`] — RFC 5869 HKDF-SHA256.
//! * [`ct`] — constant-time byte-string comparison.
//!
//! The speed/side-channel tradeoffs of the fast paths (T-tables,
//! midstate caching) are documented in `docs/CRYPTO.md` at the repo
//! root; every fast path is pinned to its reference implementation by
//! differential tests.
//!
//! # Example
//!
//! ```
//! use msb_crypto::sha256::Sha256;
//! use msb_crypto::modes::Ctr;
//! use msb_crypto::aes::Aes256;
//!
//! // Derive a 256-bit key from some secret material, then encrypt with it.
//! let key = Sha256::digest(b"shared secret material");
//! let cipher = Aes256::new(&key);
//! let nonce = [7u8; 16];
//! let mut buf = b"message in a sealed bottle".to_vec();
//! Ctr::new(&cipher, nonce).apply_keystream(&mut buf);
//! // CTR is an involution under the same key/nonce.
//! Ctr::new(&cipher, nonce).apply_keystream(&mut buf);
//! assert_eq!(&buf, b"message in a sealed bottle");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ct;
pub mod hmac;
pub mod kdf;
pub mod modes;
pub mod sha256;

/// Errors produced by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// A ciphertext was shorter than the minimum framing requires.
    CiphertextTooShort,
    /// CBC ciphertext length was not a multiple of the block size.
    NotBlockAligned,
    /// PKCS#7 padding was malformed on decryption.
    BadPadding,
    /// An authentication tag failed to verify.
    BadTag,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::CiphertextTooShort => write!(f, "ciphertext too short"),
            CryptoError::NotBlockAligned => {
                write!(f, "ciphertext length is not a multiple of the block size")
            }
            CryptoError::BadPadding => write!(f, "malformed PKCS#7 padding"),
            CryptoError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for CryptoError {}
