//! Block-cipher modes of operation: CTR and CBC with PKCS#7 padding.
//!
//! The Sealed Bottle request package carries a small AES-256 ciphertext
//! (paper §III-A); we use CTR with a random per-request nonce so that two
//! requests for the same target profile (hence the same profile key) never
//! reuse a keystream.

use crate::aes::{Block, BlockCipher, BLOCK_LEN};
use crate::CryptoError;

/// CTR mode keystream generator / encryptor.
///
/// Encryption and decryption are the same operation
/// ([`Ctr::apply_keystream`]).
///
/// # Example
///
/// ```
/// use msb_crypto::aes::Aes256;
/// use msb_crypto::modes::Ctr;
///
/// let cipher = Aes256::new(&[42u8; 32]);
/// let mut data = b"secret".to_vec();
/// Ctr::new(&cipher, [0u8; 16]).apply_keystream(&mut data);
/// assert_ne!(&data, b"secret");
/// Ctr::new(&cipher, [0u8; 16]).apply_keystream(&mut data);
/// assert_eq!(&data, b"secret");
/// ```
#[derive(Debug)]
pub struct Ctr<'c, C: BlockCipher> {
    cipher: &'c C,
    counter: Block,
    keystream: Block,
    used: usize,
}

impl<'c, C: BlockCipher> Ctr<'c, C> {
    /// Creates a CTR stream with the given initial counter block (nonce).
    pub fn new(cipher: &'c C, nonce: Block) -> Self {
        Ctr { cipher, counter: nonce, keystream: [0; BLOCK_LEN], used: BLOCK_LEN }
    }

    /// XORs the keystream into `data` in place.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        let mut at = 0;
        while at < data.len() {
            if self.used == BLOCK_LEN {
                self.refill();
            }
            // XOR a whole run of the current keystream block at once.
            let take = (BLOCK_LEN - self.used).min(data.len() - at);
            for (byte, ks) in data[at..at + take].iter_mut().zip(&self.keystream[self.used..]) {
                *byte ^= ks;
            }
            self.used += take;
            at += take;
        }
    }

    fn refill(&mut self) {
        self.keystream = self.counter;
        self.cipher.encrypt_block(&mut self.keystream);
        // Big-endian increment of the counter block.
        for i in (0..BLOCK_LEN).rev() {
            self.counter[i] = self.counter[i].wrapping_add(1);
            if self.counter[i] != 0 {
                break;
            }
        }
        self.used = 0;
    }
}

/// Encrypts `plaintext` with CBC + PKCS#7 under `cipher` and `iv`,
/// returning the ciphertext (always a whole number of blocks, at least one).
pub fn cbc_encrypt<C: BlockCipher>(cipher: &C, iv: Block, plaintext: &[u8]) -> Vec<u8> {
    let padded = pkcs7_pad(plaintext);
    let mut out = Vec::with_capacity(padded.len());
    let mut prev = iv;
    for chunk in padded.chunks_exact(BLOCK_LEN) {
        let mut block: Block = chunk.try_into().expect("chunks_exact yields full blocks");
        for i in 0..BLOCK_LEN {
            block[i] ^= prev[i];
        }
        cipher.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    out
}

/// Decrypts CBC + PKCS#7 ciphertext.
///
/// # Errors
///
/// Returns [`CryptoError::NotBlockAligned`] if the ciphertext length is not a
/// positive multiple of 16, and [`CryptoError::BadPadding`] if the padding is
/// malformed (which is the expected failure for a wrong candidate key).
pub fn cbc_decrypt<C: BlockCipher>(
    cipher: &C,
    iv: Block,
    ciphertext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
        return Err(CryptoError::NotBlockAligned);
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = iv;
    for chunk in ciphertext.chunks_exact(BLOCK_LEN) {
        let cblock: Block = chunk.try_into().expect("chunks_exact yields full blocks");
        let mut block = cblock;
        cipher.decrypt_block(&mut block);
        for i in 0..BLOCK_LEN {
            block[i] ^= prev[i];
        }
        out.extend_from_slice(&block);
        prev = cblock;
    }
    pkcs7_unpad(&mut out)?;
    Ok(out)
}

fn pkcs7_pad(data: &[u8]) -> Vec<u8> {
    let pad = BLOCK_LEN - data.len() % BLOCK_LEN;
    let mut out = data.to_vec();
    out.resize(data.len() + pad, pad as u8);
    out
}

fn pkcs7_unpad(data: &mut Vec<u8>) -> Result<(), CryptoError> {
    let pad = *data.last().ok_or(CryptoError::BadPadding)? as usize;
    if pad == 0 || pad > BLOCK_LEN || pad > data.len() {
        return Err(CryptoError::BadPadding);
    }
    if data[data.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CryptoError::BadPadding);
    }
    data.truncate(data.len() - pad);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes128, Aes256};

    fn parse(hex: &str) -> Vec<u8> {
        (0..hex.len()).step_by(2).map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn nist_sp800_38a_ctr_aes128() {
        // SP 800-38A F.5.1 CTR-AES128.Encrypt (all four blocks).
        let key: [u8; 16] = parse("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let nonce: Block = parse("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = parse(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        Ctr::new(&Aes128::new(&key), nonce).apply_keystream(&mut data);
        assert_eq!(
            data,
            parse(concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee"
            ))
        );
    }

    #[test]
    fn nist_sp800_38a_ctr_aes256() {
        // SP 800-38A F.5.5 CTR-AES256.Encrypt, first block.
        let key: [u8; 32] =
            parse("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let nonce: Block = parse("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = parse("6bc1bee22e409f96e93d7e117393172a");
        Ctr::new(&Aes256::new(&key), nonce).apply_keystream(&mut data);
        assert_eq!(data, parse("601ec313775789a5b7a7f504bbf3d228"));
    }

    #[test]
    fn ctr_partial_applications_match_oneshot() {
        let cipher = Aes256::new(&[9u8; 32]);
        let nonce = [3u8; 16];
        let mut a: Vec<u8> = (0..100u8).collect();
        let mut b = a.clone();
        Ctr::new(&cipher, nonce).apply_keystream(&mut a);
        let mut ctr = Ctr::new(&cipher, nonce);
        ctr.apply_keystream(&mut b[..7]);
        ctr.apply_keystream(&mut b[7..39]);
        ctr.apply_keystream(&mut b[39..]);
        assert_eq!(a, b);
    }

    #[test]
    fn ctr_counter_wraps_across_byte_boundary() {
        let cipher = Aes256::new(&[1u8; 32]);
        let mut nonce = [0u8; 16];
        nonce[15] = 0xff; // next increment carries into byte 14
        let mut data = vec![0u8; 48];
        Ctr::new(&cipher, nonce).apply_keystream(&mut data);
        // Keystream blocks must be distinct (counter really advanced).
        assert_ne!(data[0..16], data[16..32]);
        assert_ne!(data[16..32], data[32..48]);
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let cipher = Aes256::new(&[5u8; 32]);
        let iv = [11u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100] {
            let msg: Vec<u8> = (0..len as u8).collect();
            let ct = cbc_encrypt(&cipher, iv, &msg);
            assert_eq!(ct.len() % BLOCK_LEN, 0);
            assert!(ct.len() > msg.len(), "padding always adds bytes");
            let pt = cbc_decrypt(&cipher, iv, &ct).unwrap();
            assert_eq!(pt, msg, "len {len}");
        }
    }

    #[test]
    fn cbc_wrong_key_fails_or_garbles() {
        let enc = Aes256::new(&[5u8; 32]);
        let dec = Aes256::new(&[6u8; 32]);
        let iv = [0u8; 16];
        let msg = b"attribute:value".to_vec();
        let ct = cbc_encrypt(&enc, iv, &msg);
        match cbc_decrypt(&dec, iv, &ct) {
            Err(CryptoError::BadPadding) => {}
            Ok(pt) => assert_ne!(pt, msg),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn cbc_rejects_unaligned() {
        let cipher = Aes256::new(&[5u8; 32]);
        assert_eq!(cbc_decrypt(&cipher, [0u8; 16], &[1, 2, 3]), Err(CryptoError::NotBlockAligned));
        assert_eq!(cbc_decrypt(&cipher, [0u8; 16], &[]), Err(CryptoError::NotBlockAligned));
    }

    #[test]
    fn pkcs7_exact_block_adds_full_block() {
        let data = [1u8; 16];
        let padded = pkcs7_pad(&data);
        assert_eq!(padded.len(), 32);
        assert_eq!(&padded[16..], &[16u8; 16]);
    }

    #[test]
    fn pkcs7_rejects_zero_and_oversized_pad() {
        let mut d = vec![1u8; 16];
        d[15] = 0;
        assert_eq!(pkcs7_unpad(&mut d.clone()), Err(CryptoError::BadPadding));
        let mut d2 = vec![1u8; 16];
        d2[15] = 17;
        assert_eq!(pkcs7_unpad(&mut d2.clone()), Err(CryptoError::BadPadding));
    }
}
