//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the secure channel (paper §III-F) in an encrypt-then-MAC
//! construction, and as the PRF inside [`crate::kdf`].

use crate::sha256::{Digest, Sha256, BLOCK_LEN, DIGEST_LEN};

/// HMAC-SHA256 keyed hasher.
///
/// # Example
///
/// ```
/// use msb_crypto::hmac::HmacSha256;
///
/// let tag = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// assert!(!HmacSha256::verify(b"key", b"tampered", &tag));
/// ```
/// Both pads are absorbed at construction time and kept as SHA-256
/// midstates, so cloning a keyed instance (as the HKDF expand loop does
/// per output block) pays zero compressions for the key.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC instance for `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = Sha256::digest(key);
            block_key[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        let mut h = Self::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-time verification of `tag` against `message` under `key`.
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        let expected = Self::mac(key, message);
        crate::ct::eq(&expected, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let tag = HmacSha256::mac(&[0x0b; 20], b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_data() {
        let tag = HmacSha256::mac(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_key_longer_than_block() {
        let key = [0xaa; 131];
        let tag = HmacSha256::mac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"k");
        h.update(b"ab");
        h.update(b"cd");
        assert_eq!(h.finalize(), HmacSha256::mac(b"k", b"abcd"));
    }

    #[test]
    fn verify_rejects_truncated_tag() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..31]));
        assert!(!HmacSha256::verify(b"k", b"m", &[]));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(HmacSha256::mac(b"k1", b"m"), HmacSha256::mac(b"k2", b"m"));
    }
}
