//! HKDF-SHA256 (RFC 5869): extract-and-expand key derivation.
//!
//! The secure channel of the Sealed Bottle protocol derives its session keys
//! from the exchanged secrets `x` (initiator) and `y` (responder): the paper
//! writes the pairwise key informally as "x + y"; we realise it as
//! `HKDF(salt = "msb", ikm = x ‖ y)` so the two directions and the MAC key
//! are domain-separated.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: produces a pseudorandom key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: stretches `prk` to `len` bytes bound to `info`.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (the RFC 5869 limit).
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    // Key the PRF once; each block clones the ipad/opad midstates
    // instead of re-absorbing the key pads.
    let keyed = HmacSha256::new(prk);
    while out.len() < len {
        let mut h = keyed.clone();
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        t = h.finalize().to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t[..take]);
        counter += 1;
    }
    out
}

/// Full HKDF: extract then expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = extract(salt, ikm);
    expand(&prk, info, len)
}

/// Derives a fixed 32-byte key — the common case for AES-256 / HMAC keys.
pub fn derive_key32(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let v = hkdf(salt, ikm, info, 32);
    v.try_into().expect("requested exactly 32 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    fn parse(hex: &str) -> Vec<u8> {
        (0..hex.len()).step_by(2).map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt = parse("000102030405060708090a0b0c");
        let info = parse("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case2_long() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let okm = hkdf(&salt, &ikm, &info, 82);
        assert_eq!(
            to_hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn rfc5869_case3_empty_salt_info() {
        let ikm = [0x0b; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_key32_deterministic_and_info_separated() {
        let k1 = derive_key32(b"salt", b"ikm", b"enc");
        let k2 = derive_key32(b"salt", b"ikm", b"enc");
        let k3 = derive_key32(b"salt", b"ikm", b"mac");
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    #[should_panic(expected = "HKDF output too long")]
    fn expand_rejects_oversize() {
        let prk = [0u8; 32];
        let _ = expand(&prk, b"", 255 * 32 + 1);
    }
}
