//! SHA-256 as specified in FIPS 180-4.
//!
//! Both an incremental hasher ([`Sha256`]) and a one-shot convenience
//! ([`Sha256::digest`]) are provided. The attribute-hashing step of the
//! Sealed Bottle mechanism (paper Eq. 2) and the profile-key derivation
//! (Eq. 3) are both instances of this function.
//!
//! Two throughput features serve the candidate-enumeration hot loop
//! (see `docs/CRYPTO.md`):
//!
//! * **Midstate caching.** [`Sha256`] is `Clone` with no heap state
//!   (104 bytes), and the *midstate contract* holds: cloning a hasher
//!   after absorbing a prefix and then absorbing a suffix yields exactly
//!   the digest of the concatenation. A fixed per-profile prefix is
//!   therefore absorbed once and each candidate pays only its final
//!   compressions ([`Sha256::finalize_suffix`]).
//! * **Multi-buffer hashing.** [`Sha256::digest_many`] compresses four
//!   independent equal-length messages in lockstep
//!   (4 interleaved dependency chains, which the compiler can map onto
//!   4-lane vector registers), falling back to serial hashing for
//!   ragged tails.

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// Size of a SHA-256 message block in bytes.
pub const BLOCK_LEN: usize = 64;

/// A SHA-256 digest.
pub type Digest = [u8; DIGEST_LEN];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// Cloning is cheap (104 bytes, no heap) and a clone continues the hash
/// independently — this is the midstate mechanism used by the matching
/// loop's profile-key derivation.
///
/// # Example
///
/// ```
/// use msb_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// // Midstate: the clone and the original diverge from here.
/// let digest = h.clone().finalize();
/// h.update(b"world");
/// assert_eq!(h.finalize(), Sha256::digest(b"hello world"));
/// assert_eq!(digest, Sha256::digest(b"hello "));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buf: [0; BLOCK_LEN], buf_len: 0, total_len: 0 }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Digest of the concatenation of several byte strings, without an
    /// intermediate allocation.
    pub fn digest_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Self::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Digests many independent messages, compressing equal-length runs
    /// of four in lockstep (multi-buffer hashing). Output order matches
    /// input order and every digest equals [`Sha256::digest`] of the
    /// same message.
    pub fn digest_many(inputs: &[&[u8]]) -> Vec<Digest> {
        let mut out = Vec::with_capacity(inputs.len());
        let mut i = 0;
        while i < inputs.len() {
            if i + 4 <= inputs.len()
                && inputs[i + 1..i + 4].iter().all(|m| m.len() == inputs[i].len())
            {
                out.extend_from_slice(&Self::digest4([
                    inputs[i],
                    inputs[i + 1],
                    inputs[i + 2],
                    inputs[i + 3],
                ]));
                i += 4;
            } else {
                out.push(Self::digest(inputs[i]));
                i += 1;
            }
        }
        out
    }

    /// Digests four equal-length messages with interleaved compression.
    ///
    /// # Panics
    ///
    /// Panics if the messages are not all the same length (the lockstep
    /// schedule requires identical block and padding structure).
    pub fn digest4(msgs: [&[u8]; 4]) -> [Digest; 4] {
        let len = msgs[0].len();
        assert!(msgs.iter().all(|m| m.len() == len), "digest4 requires equal-length messages");
        let mut states = [H0; 4];
        let full = len / BLOCK_LEN;
        for b in 0..full {
            let at = b * BLOCK_LEN;
            compress4(
                &mut states,
                [&msgs[0][at..], &msgs[1][at..], &msgs[2][at..], &msgs[3][at..]],
            );
        }
        // Identical padding for all lanes: remainder + 0x80 + zeros +
        // 64-bit bit length, one or two tail blocks.
        let rem = len % BLOCK_LEN;
        let bit_len = (len as u64).wrapping_mul(8);
        let mut tails = [[0u8; BLOCK_LEN]; 4];
        for (lane, tail) in tails.iter_mut().enumerate() {
            tail[..rem].copy_from_slice(&msgs[lane][len - rem..]);
            tail[rem] = 0x80;
        }
        if rem + 1 > 56 {
            compress4(&mut states, [&tails[0], &tails[1], &tails[2], &tails[3]]);
            tails = [[0u8; BLOCK_LEN]; 4];
        }
        for tail in tails.iter_mut() {
            tail[56..].copy_from_slice(&bit_len.to_be_bytes());
        }
        compress4(&mut states, [&tails[0], &tails[1], &tails[2], &tails[3]]);
        core::array::from_fn(|lane| {
            let mut out = [0u8; DIGEST_LEN];
            for (i, word) in states[lane].iter().enumerate() {
                out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
            }
            out
        })
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&input[..BLOCK_LEN]);
            self.compress(&block);
            input = &input[BLOCK_LEN..];
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit
        // length — built as whole blocks rather than byte-at-a-time.
        let used = self.buf_len;
        let mut block = self.buf;
        block[used] = 0x80;
        if used + 1 > 56 {
            for b in &mut block[used + 1..] {
                *b = 0;
            }
            self.compress(&block);
            block = [0u8; BLOCK_LEN];
        } else {
            for b in &mut block[used + 1..56] {
                *b = 0;
            }
        }
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Midstate convenience: digest of (everything absorbed so far) ‖
    /// `suffix`, without consuming the hasher. Equivalent to cloning,
    /// updating with `suffix`, and finalizing the clone.
    pub fn finalize_suffix(&self, suffix: &[u8]) -> Digest {
        let mut h = self.clone();
        h.update(suffix);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// A row of four u32 lanes — one schedule word or working variable per
/// interleaved message. Whole-row operations below are the shape LLVM's
/// auto-vectorizer maps onto a single 4×u32 vector register on
/// SSE2/NEON-class hardware.
type Row = [u32; 4];

#[inline(always)]
fn add4(a: Row, b: Row) -> Row {
    [
        a[0].wrapping_add(b[0]),
        a[1].wrapping_add(b[1]),
        a[2].wrapping_add(b[2]),
        a[3].wrapping_add(b[3]),
    ]
}

#[inline(always)]
fn xor4(a: Row, b: Row) -> Row {
    [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
}

#[inline(always)]
fn and4(a: Row, b: Row) -> Row {
    [a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]]
}

#[inline(always)]
fn rotr4(x: Row, n: u32) -> Row {
    [x[0].rotate_right(n), x[1].rotate_right(n), x[2].rotate_right(n), x[3].rotate_right(n)]
}

#[inline(always)]
fn shr4(x: Row, n: u32) -> Row {
    [x[0] >> n, x[1] >> n, x[2] >> n, x[3] >> n]
}

/// Compresses one 64-byte block into each of four lane states in
/// lockstep. All arithmetic is expressed as whole-[`Row`] operations
/// (straight-line, no lane indexing in the hot loops) so the four
/// independent dependency chains vectorize. Each `blocks[lane]` must be
/// at least [`BLOCK_LEN`] bytes; only the first block is consumed.
fn compress4(states: &mut [[u32; 8]; 4], blocks: [&[u8]; 4]) {
    // Message schedule, stored lane-contiguous (w[i] = the 4 lanes of
    // schedule word i).
    let mut w = [[0u32; 4]; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        for lane in 0..4 {
            let block = blocks[lane];
            word[lane] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
    }
    for i in 16..64 {
        let x = w[i - 15];
        let y = w[i - 2];
        let s0 = xor4(xor4(rotr4(x, 7), rotr4(x, 18)), shr4(x, 3));
        let s1 = xor4(xor4(rotr4(y, 17), rotr4(y, 19)), shr4(y, 10));
        w[i] = add4(add4(w[i - 16], s0), add4(w[i - 7], s1));
    }

    // Working variables as row-valued locals; the a..h rotation is pure
    // register renaming instead of array shuffles.
    let mut a: Row = core::array::from_fn(|l| states[l][0]);
    let mut b: Row = core::array::from_fn(|l| states[l][1]);
    let mut c: Row = core::array::from_fn(|l| states[l][2]);
    let mut d: Row = core::array::from_fn(|l| states[l][3]);
    let mut e: Row = core::array::from_fn(|l| states[l][4]);
    let mut f: Row = core::array::from_fn(|l| states[l][5]);
    let mut g: Row = core::array::from_fn(|l| states[l][6]);
    let mut h: Row = core::array::from_fn(|l| states[l][7]);
    for i in 0..64 {
        let s1 = xor4(xor4(rotr4(e, 6), rotr4(e, 11)), rotr4(e, 25));
        let ch = xor4(and4(e, f), and4([!e[0], !e[1], !e[2], !e[3]], g));
        let k = [K[i]; 4];
        let t1 = add4(add4(add4(h, s1), add4(ch, k)), w[i]);
        let s0 = xor4(xor4(rotr4(a, 2), rotr4(a, 13)), rotr4(a, 22));
        let maj = xor4(xor4(and4(a, b), and4(a, c)), and4(b, c));
        let t2 = add4(s0, maj);
        h = g;
        g = f;
        f = e;
        e = add4(d, t1);
        d = c;
        c = b;
        b = a;
        a = add4(t1, t2);
    }
    let rows = [a, b, c, d, e, f, g, h];
    for (lane, state) in states.iter_mut().enumerate() {
        for (r, word) in state.iter_mut().enumerate() {
            *word = word.wrapping_add(rows[r][lane]);
        }
    }
}

/// Formats a digest as lowercase hex, handy for test vectors and debugging.
pub fn to_hex(digest: &[u8]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: Digest) -> String {
        to_hex(&d)
    }

    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            hex(Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn nist_448_bit_exact_padding_boundary() {
        // 56 bytes: padding spills into a second block.
        let data = [0x55u8; 56];
        let mut h = Sha256::new();
        h.update(&data);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn finalize_padding_all_residues() {
        // The bulk-padding finalize must agree with the spec at every
        // buffer residue, including both spill cases (55, 56, 63).
        for len in 0..130usize {
            let data: Vec<u8> = (0..len as u8).collect();
            let mut h = Sha256::new();
            h.update(&data);
            let d = h.finalize();
            // Independent check against the two-block NIST property:
            // re-hash via single-byte updates.
            let mut h2 = Sha256::new();
            for b in &data {
                h2.update(core::slice::from_ref(b));
            }
            assert_eq!(d, h2.finalize(), "len {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot_all_splits() {
        let data: Vec<u8> = (0..=255u8).cycle().take(500).collect();
        let oneshot = Sha256::digest(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 128, 499, 500] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn midstate_clone_continues_independently() {
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        for cut in [0usize, 1, 32, 63, 64, 65, 128, 299, 300] {
            let mut prefix = Sha256::new();
            prefix.update(&data[..cut]);
            // finalize_suffix leaves the midstate reusable.
            assert_eq!(prefix.finalize_suffix(&data[cut..]), Sha256::digest(&data), "cut {cut}");
            assert_eq!(prefix.finalize_suffix(b""), Sha256::digest(&data[..cut]), "cut {cut}");
            let mut fork = prefix.clone();
            fork.update(&data[cut..]);
            assert_eq!(fork.finalize(), Sha256::digest(&data), "cut {cut}");
        }
    }

    #[test]
    fn digest4_matches_serial() {
        for len in [0usize, 1, 19, 32, 55, 56, 63, 64, 65, 120, 128, 200] {
            let msgs: Vec<Vec<u8>> = (0..4u8)
                .map(|lane| {
                    (0..len).map(|i| (i as u8).wrapping_mul(3).wrapping_add(lane)).collect()
                })
                .collect();
            let got = Sha256::digest4([&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
            for lane in 0..4 {
                assert_eq!(got[lane], Sha256::digest(&msgs[lane]), "len {len} lane {lane}");
            }
        }
    }

    #[test]
    fn digest_many_matches_map_mixed_lengths() {
        // Equal-length runs, ragged tails, and length changes mid-list.
        let msgs: Vec<Vec<u8>> = (0..11)
            .map(|i| {
                let len = match i {
                    0..=3 => 19, // one 4-lane batch
                    4..=7 => 70, // another batch, two blocks each
                    _ => 5 + i,  // ragged tail, serial
                };
                (0..len).map(|j| (i * 41 + j) as u8).collect()
            })
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let got = Sha256::digest_many(&refs);
        let expect: Vec<Digest> = msgs.iter().map(|m| Sha256::digest(m)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn digest_parts_equals_concat() {
        let a = b"nec".as_slice();
        let b = b"essary".as_slice();
        assert_eq!(Sha256::digest_parts(&[a, b]), Sha256::digest(b"necessary"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha256::digest(b"alice"), Sha256::digest(b"bob"));
    }

    #[test]
    fn to_hex_zero_padded() {
        let mut d = [0u8; 32];
        d[0] = 0x0a;
        assert!(to_hex(&d).starts_with("0a00"));
    }
}
