//! AES block cipher as specified in FIPS 197.
//!
//! The paper encrypts the sealed-bottle payload with AES under the 256-bit
//! profile key, so [`Aes256`] is the workhorse; [`Aes128`] is provided for
//! completeness and for the microbenchmarks of Table IV.
//!
//! Two implementation strategies are provided, selectable per cipher via
//! [`CipherBackend`] (see `docs/CRYPTO.md` for the full matrix):
//!
//! * [`CipherBackend::Sbox`] — the original table-free path (256-byte
//!   S-box lookups only, per-byte `MixColumns`). Slow but with a tiny,
//!   cache-resident memory footprint; it is the **differential oracle**
//!   and the default everywhere candidate keys are compared.
//! * [`CipherBackend::Table`] — the classic 32-bit T-table formulation:
//!   four 1 KiB encrypt tables (`TE0..TE3`) folding `SubBytes` +
//!   `MixColumns` into one lookup per byte, and four 1 KiB inverse
//!   tables (`TD0..TD3`) used with the FIPS 197 §5.3.5 *equivalent
//!   inverse cipher*: `InvMixColumns` is applied once to the middle
//!   round keys at schedule time, which makes decrypt structurally
//!   symmetric to encrypt (and hence equally fast), instead of paying
//!   per-byte GF(2^8) multiplications every block.
//!
//! The tradeoff is cache-timing: the 8 KiB of T-tables index on
//! key-dependent bytes, so a co-located attacker who can prime/probe the
//! cache can in principle recover key bytes (Bernstein 2005, Osvik et
//! al. 2006). The S-box path touches only 256 bytes (typically 4 lines,
//! usually all resident) and is kept as the conservative default; the
//! table path is for bulk/throughput work where the key is not secret
//! from the machine doing the work (benchmarks, the responder's trial
//! decryptions of *candidate* keys derived from its own profile, server
//! relay throughput). Both backends are proven byte-identical by
//! differential tests and NIST known-answer vectors.

use std::sync::OnceLock;

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// One AES block.
pub type Block = [u8; BLOCK_LEN];

/// Which AES implementation strategy a cipher instance uses.
///
/// Both backends produce byte-identical ciphertext; they differ only in
/// speed and memory-access pattern (see the module docs and
/// `docs/CRYPTO.md` for the side-channel discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CipherBackend {
    /// S-box-only reference implementation: 256-byte tables, per-byte
    /// `MixColumns`. The differential oracle and the conservative
    /// default.
    #[default]
    Sbox,
    /// 32-bit T-tables (8 KiB) with the equivalent-inverse-cipher
    /// decrypt schedule. ~2–3× faster, key-dependent cache access.
    Table,
}

impl CipherBackend {
    /// Parses a backend name: `"sbox"` / `"table"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "sbox" | "s-box" => Some(CipherBackend::Sbox),
            "table" | "ttable" | "t-table" => Some(CipherBackend::Table),
            _ => None,
        }
    }

    /// Resolves the value of `MSB_AES_BACKEND` (unset, empty, or
    /// unrecognised values fall back to the [`CipherBackend::Sbox`]
    /// oracle). Pure helper so tests can cover the parsing without
    /// touching the process environment.
    pub fn from_env_value(value: Option<&str>) -> Self {
        value.and_then(CipherBackend::parse).unwrap_or_default()
    }

    /// Reads `MSB_AES_BACKEND` once (cached), mirroring how
    /// `MSB_THREADS` selects the matching parallelism. `sbox` (the
    /// default when unset) keeps every path on the constant-footprint
    /// oracle; `table` opts bulk paths into the T-table backend.
    pub fn from_env() -> Self {
        static BACKEND: OnceLock<CipherBackend> = OnceLock::new();
        *BACKEND.get_or_init(|| {
            CipherBackend::from_env_value(std::env::var("MSB_AES_BACKEND").ok().as_deref())
        })
    }
}

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 15] =
    [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a];

/// Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
/// `const` so the T-tables below can be built at compile time.
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

// ---------------------------------------------------------------------------
// T-tables. Words pack a state column big-endian: row 0 in the top byte.
//
// TE_r[x] is the MixColumns contribution of S-box(x) sitting at row r of a
// column: one lookup per state byte replaces SubBytes + MixColumns.
// TD_r[x] is the same for InvMixColumns ∘ InvSubBytes, used by the
// equivalent inverse cipher.
// ---------------------------------------------------------------------------

const fn te_word(s: u8, row: usize) -> u32 {
    // MixColumns matrix rows, cycled so `row` names the input byte's row.
    let (a, b, c, d) = (gmul(s, 2), s, s, gmul(s, 3));
    match row {
        0 => u32::from_be_bytes([a, b, c, d]),
        1 => u32::from_be_bytes([d, a, b, c]),
        2 => u32::from_be_bytes([c, d, a, b]),
        _ => u32::from_be_bytes([b, c, d, a]),
    }
}

const fn td_word(s: u8, row: usize) -> u32 {
    let (a, b, c, d) = (gmul(s, 14), gmul(s, 9), gmul(s, 13), gmul(s, 11));
    match row {
        0 => u32::from_be_bytes([a, b, c, d]),
        1 => u32::from_be_bytes([d, a, b, c]),
        2 => u32::from_be_bytes([c, d, a, b]),
        _ => u32::from_be_bytes([b, c, d, a]),
    }
}

const fn build_te(row: usize) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = te_word(SBOX[i], row);
        i += 1;
    }
    t
}

const fn build_td(row: usize) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = td_word(INV_SBOX[i], row);
        i += 1;
    }
    t
}

const TE0: [u32; 256] = build_te(0);
const TE1: [u32; 256] = build_te(1);
const TE2: [u32; 256] = build_te(2);
const TE3: [u32; 256] = build_te(3);

const TD0: [u32; 256] = build_td(0);
const TD1: [u32; 256] = build_td(1);
const TD2: [u32; 256] = build_td(2);
const TD3: [u32; 256] = build_td(3);

/// `InvMixColumns` of a packed column word, via the TD/S-box identity
/// `TD_r[SBOX[x]] = InvMixColumns contribution of x at row r` (the
/// inverse S-box inside TD cancels against the forward S-box).
fn inv_mix_word(w: u32) -> u32 {
    let [a, b, c, d] = w.to_be_bytes();
    TD0[SBOX[a as usize] as usize]
        ^ TD1[SBOX[b as usize] as usize]
        ^ TD2[SBOX[c as usize] as usize]
        ^ TD3[SBOX[d as usize] as usize]
}

/// A key-scheduled AES cipher (generic over the number of rounds).
///
/// Use [`Aes128::new`] or [`Aes256::new`] for the S-box oracle backend,
/// or the `with_backend` constructors to select explicitly.
#[derive(Debug, Clone)]
pub struct AesCipher {
    round_keys: Vec<[u8; 16]>,
    /// Word-form encrypt schedule; populated only for the Table backend.
    enc_w: Vec<[u32; 4]>,
    /// Equivalent-inverse decrypt schedule (FIPS 197 §5.3.5):
    /// `dk[0] = ek[nr]`, `dk[i] = InvMixColumns(ek[nr-i])` for
    /// `0 < i < nr`, `dk[nr] = ek[0]`. Populated only for Table.
    dec_w: Vec<[u32; 4]>,
    backend: CipherBackend,
}

/// AES-128: 10 rounds, 16-byte key.
#[derive(Debug, Clone)]
pub struct Aes128(AesCipher);

/// AES-256: 14 rounds, 32-byte key. The profile key of the Sealed Bottle
/// mechanism is used directly as an AES-256 key.
#[derive(Debug, Clone)]
pub struct Aes256(AesCipher);

impl Aes128 {
    /// Expands a 128-bit key on the S-box oracle backend.
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_backend(key, CipherBackend::Sbox)
    }

    /// Expands a 128-bit key on the chosen backend.
    pub fn with_backend(key: &[u8; 16], backend: CipherBackend) -> Self {
        Aes128(AesCipher::expand(key, 4, 10, backend))
    }

    /// The backend this cipher was built with.
    pub fn backend(&self) -> CipherBackend {
        self.0.backend
    }
}

impl Aes256 {
    /// Expands a 256-bit key on the S-box oracle backend.
    pub fn new(key: &[u8; 32]) -> Self {
        Self::with_backend(key, CipherBackend::Sbox)
    }

    /// Expands a 256-bit key on the chosen backend.
    pub fn with_backend(key: &[u8; 32], backend: CipherBackend) -> Self {
        Aes256(AesCipher::expand(key, 8, 14, backend))
    }

    /// The backend this cipher was built with.
    pub fn backend(&self) -> CipherBackend {
        self.0.backend
    }
}

/// A block cipher with a 16-byte block: the common interface used by
/// [`crate::modes`].
pub trait BlockCipher {
    /// Encrypts one 16-byte block in place.
    fn encrypt_block(&self, block: &mut Block);
    /// Decrypts one 16-byte block in place.
    fn decrypt_block(&self, block: &mut Block);
}

impl BlockCipher for Aes128 {
    fn encrypt_block(&self, block: &mut Block) {
        self.0.encrypt_block(block)
    }
    fn decrypt_block(&self, block: &mut Block) {
        self.0.decrypt_block(block)
    }
}

impl BlockCipher for Aes256 {
    fn encrypt_block(&self, block: &mut Block) {
        self.0.encrypt_block(block)
    }
    fn decrypt_block(&self, block: &mut Block) {
        self.0.decrypt_block(block)
    }
}

impl AesCipher {
    /// FIPS 197 key expansion. `nk` is the key length in 32-bit words,
    /// `rounds` the number of rounds (10 for AES-128, 14 for AES-256).
    fn expand(key: &[u8], nk: usize, rounds: usize, backend: CipherBackend) -> Self {
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([prev[0] ^ temp[0], prev[1] ^ temp[1], prev[2] ^ temp[2], prev[3] ^ temp[3]]);
        }
        let round_keys: Vec<[u8; 16]> = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();

        let (enc_w, dec_w) = match backend {
            CipherBackend::Sbox => (Vec::new(), Vec::new()),
            CipherBackend::Table => {
                let enc_w: Vec<[u32; 4]> = round_keys.iter().map(pack_words).collect();
                let nr = round_keys.len() - 1;
                let mut dec_w = Vec::with_capacity(nr + 1);
                dec_w.push(enc_w[nr]);
                for i in 1..nr {
                    let ek = enc_w[nr - i];
                    dec_w.push([
                        inv_mix_word(ek[0]),
                        inv_mix_word(ek[1]),
                        inv_mix_word(ek[2]),
                        inv_mix_word(ek[3]),
                    ]);
                }
                dec_w.push(enc_w[0]);
                (enc_w, dec_w)
            }
        };
        AesCipher { round_keys, enc_w, dec_w, backend }
    }

    fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }

    fn encrypt_block(&self, state: &mut Block) {
        match self.backend {
            CipherBackend::Sbox => self.encrypt_block_sbox(state),
            CipherBackend::Table => self.encrypt_block_table(state),
        }
    }

    fn decrypt_block(&self, state: &mut Block) {
        match self.backend {
            CipherBackend::Sbox => self.decrypt_block_sbox(state),
            CipherBackend::Table => self.decrypt_block_table(state),
        }
    }

    fn encrypt_block_sbox(&self, state: &mut Block) {
        add_round_key(state, &self.round_keys[0]);
        let nr = self.rounds();
        for round in 1..nr {
            sub_bytes(state);
            shift_rows(state);
            mix_columns(state);
            add_round_key(state, &self.round_keys[round]);
        }
        sub_bytes(state);
        shift_rows(state);
        add_round_key(state, &self.round_keys[nr]);
    }

    fn decrypt_block_sbox(&self, state: &mut Block) {
        let nr = self.rounds();
        add_round_key(state, &self.round_keys[nr]);
        for round in (1..nr).rev() {
            inv_shift_rows(state);
            inv_sub_bytes(state);
            add_round_key(state, &self.round_keys[round]);
            inv_mix_columns(state);
        }
        inv_shift_rows(state);
        inv_sub_bytes(state);
        add_round_key(state, &self.round_keys[0]);
    }

    fn encrypt_block_table(&self, state: &mut Block) {
        let rk = &self.enc_w[..];
        let nr = rk.len() - 1;
        let [mut s0, mut s1, mut s2, mut s3] = load_words(state);
        s0 ^= rk[0][0];
        s1 ^= rk[0][1];
        s2 ^= rk[0][2];
        s3 ^= rk[0][3];
        for r in rk.iter().take(nr).skip(1) {
            let t0 = TE0[(s0 >> 24) as usize]
                ^ TE1[(s1 >> 16) as usize & 0xff]
                ^ TE2[(s2 >> 8) as usize & 0xff]
                ^ TE3[s3 as usize & 0xff]
                ^ r[0];
            let t1 = TE0[(s1 >> 24) as usize]
                ^ TE1[(s2 >> 16) as usize & 0xff]
                ^ TE2[(s3 >> 8) as usize & 0xff]
                ^ TE3[s0 as usize & 0xff]
                ^ r[1];
            let t2 = TE0[(s2 >> 24) as usize]
                ^ TE1[(s3 >> 16) as usize & 0xff]
                ^ TE2[(s0 >> 8) as usize & 0xff]
                ^ TE3[s1 as usize & 0xff]
                ^ r[2];
            let t3 = TE0[(s3 >> 24) as usize]
                ^ TE1[(s0 >> 16) as usize & 0xff]
                ^ TE2[(s1 >> 8) as usize & 0xff]
                ^ TE3[s2 as usize & 0xff]
                ^ r[3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        let last = rk[nr];
        let t0 = sub_word_shifted(s0, s1, s2, s3) ^ last[0];
        let t1 = sub_word_shifted(s1, s2, s3, s0) ^ last[1];
        let t2 = sub_word_shifted(s2, s3, s0, s1) ^ last[2];
        let t3 = sub_word_shifted(s3, s0, s1, s2) ^ last[3];
        store_words(state, [t0, t1, t2, t3]);
    }

    /// Equivalent inverse cipher (FIPS 197 §5.3.5): same data flow as
    /// encrypt, with TD tables, `InvShiftRows` byte selection, and the
    /// pre-transformed `dec_w` schedule.
    fn decrypt_block_table(&self, state: &mut Block) {
        let rk = &self.dec_w[..];
        let nr = rk.len() - 1;
        let [mut s0, mut s1, mut s2, mut s3] = load_words(state);
        s0 ^= rk[0][0];
        s1 ^= rk[0][1];
        s2 ^= rk[0][2];
        s3 ^= rk[0][3];
        for r in rk.iter().take(nr).skip(1) {
            let t0 = TD0[(s0 >> 24) as usize]
                ^ TD1[(s3 >> 16) as usize & 0xff]
                ^ TD2[(s2 >> 8) as usize & 0xff]
                ^ TD3[s1 as usize & 0xff]
                ^ r[0];
            let t1 = TD0[(s1 >> 24) as usize]
                ^ TD1[(s0 >> 16) as usize & 0xff]
                ^ TD2[(s3 >> 8) as usize & 0xff]
                ^ TD3[s2 as usize & 0xff]
                ^ r[1];
            let t2 = TD0[(s2 >> 24) as usize]
                ^ TD1[(s1 >> 16) as usize & 0xff]
                ^ TD2[(s0 >> 8) as usize & 0xff]
                ^ TD3[s3 as usize & 0xff]
                ^ r[2];
            let t3 = TD0[(s3 >> 24) as usize]
                ^ TD1[(s2 >> 16) as usize & 0xff]
                ^ TD2[(s1 >> 8) as usize & 0xff]
                ^ TD3[s0 as usize & 0xff]
                ^ r[3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        let last = rk[nr];
        let t0 = inv_sub_word_shifted(s0, s3, s2, s1) ^ last[0];
        let t1 = inv_sub_word_shifted(s1, s0, s3, s2) ^ last[1];
        let t2 = inv_sub_word_shifted(s2, s1, s0, s3) ^ last[2];
        let t3 = inv_sub_word_shifted(s3, s2, s1, s0) ^ last[3];
        store_words(state, [t0, t1, t2, t3]);
    }
}

fn pack_words(rk: &[u8; 16]) -> [u32; 4] {
    core::array::from_fn(|i| {
        u32::from_be_bytes([rk[4 * i], rk[4 * i + 1], rk[4 * i + 2], rk[4 * i + 3]])
    })
}

fn load_words(block: &Block) -> [u32; 4] {
    core::array::from_fn(|i| {
        u32::from_be_bytes([block[4 * i], block[4 * i + 1], block[4 * i + 2], block[4 * i + 3]])
    })
}

fn store_words(block: &mut Block, words: [u32; 4]) {
    for (i, w) in words.iter().enumerate() {
        block[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
    }
}

/// Applies `SubBytes` to the four bytes of a final-round output column,
/// taking row 0 from `a`, row 1 from `b`, row 2 from `c`, row 3 from `d`
/// (the caller picks the `ShiftRows` sources).
fn sub_word_shifted(a: u32, b: u32, c: u32, d: u32) -> u32 {
    (SBOX[(a >> 24) as usize] as u32) << 24
        | (SBOX[(b >> 16) as usize & 0xff] as u32) << 16
        | (SBOX[(c >> 8) as usize & 0xff] as u32) << 8
        | SBOX[d as usize & 0xff] as u32
}

fn inv_sub_word_shifted(a: u32, b: u32, c: u32, d: u32) -> u32 {
    (INV_SBOX[(a >> 24) as usize] as u32) << 24
        | (INV_SBOX[(b >> 16) as usize & 0xff] as u32) << 16
        | (INV_SBOX[(c >> 8) as usize & 0xff] as u32) << 8
        | INV_SBOX[d as usize & 0xff] as u32
}

// The state is stored column-major as in FIPS 197: byte index = 4*col + row.

fn add_round_key(state: &mut Block, rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut Block) {
    // Row r is shifted left by r positions.
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[4 * col + row] = s[4 * ((col + row) % 4) + row];
        }
    }
}

fn inv_shift_rows(state: &mut Block) {
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[4 * ((col + row) % 4) + row] = s[4 * col + row];
        }
    }
}

fn mix_columns(state: &mut Block) {
    for col in 0..4 {
        let c = [state[4 * col], state[4 * col + 1], state[4 * col + 2], state[4 * col + 3]];
        state[4 * col] = gmul(c[0], 2) ^ gmul(c[1], 3) ^ c[2] ^ c[3];
        state[4 * col + 1] = c[0] ^ gmul(c[1], 2) ^ gmul(c[2], 3) ^ c[3];
        state[4 * col + 2] = c[0] ^ c[1] ^ gmul(c[2], 2) ^ gmul(c[3], 3);
        state[4 * col + 3] = gmul(c[0], 3) ^ c[1] ^ c[2] ^ gmul(c[3], 2);
    }
}

fn inv_mix_columns(state: &mut Block) {
    for col in 0..4 {
        let c = [state[4 * col], state[4 * col + 1], state[4 * col + 2], state[4 * col + 3]];
        state[4 * col] = gmul(c[0], 14) ^ gmul(c[1], 11) ^ gmul(c[2], 13) ^ gmul(c[3], 9);
        state[4 * col + 1] = gmul(c[0], 9) ^ gmul(c[1], 14) ^ gmul(c[2], 11) ^ gmul(c[3], 13);
        state[4 * col + 2] = gmul(c[0], 13) ^ gmul(c[1], 9) ^ gmul(c[2], 14) ^ gmul(c[3], 11);
        state[4 * col + 3] = gmul(c[0], 11) ^ gmul(c[1], 13) ^ gmul(c[2], 9) ^ gmul(c[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [CipherBackend; 2] = [CipherBackend::Sbox, CipherBackend::Table];

    fn parse(hex: &str) -> Vec<u8> {
        (0..hex.len()).step_by(2).map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn fips197_appendix_c1_aes128_both_backends() {
        let key: [u8; 16] = parse("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        for backend in BACKENDS {
            let mut block: Block = parse("00112233445566778899aabbccddeeff").try_into().unwrap();
            let cipher = Aes128::with_backend(&key, backend);
            cipher.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), parse("69c4e0d86a7b0430d8cdb78070b4c55a"), "{backend:?}");
            cipher.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), parse("00112233445566778899aabbccddeeff"), "{backend:?}");
        }
    }

    #[test]
    fn fips197_appendix_c3_aes256_both_backends() {
        let key: [u8; 32] =
            parse("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        for backend in BACKENDS {
            let mut block: Block = parse("00112233445566778899aabbccddeeff").try_into().unwrap();
            let cipher = Aes256::with_backend(&key, backend);
            cipher.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), parse("8ea2b7ca516745bfeafc49904b496089"), "{backend:?}");
            cipher.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), parse("00112233445566778899aabbccddeeff"), "{backend:?}");
        }
    }

    #[test]
    fn nist_sp800_38a_ecb_aes256_first_block() {
        // SP 800-38A F.1.5 ECB-AES256.Encrypt, block #1.
        let key: [u8; 32] =
            parse("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        for backend in BACKENDS {
            let mut block: Block = parse("6bc1bee22e409f96e93d7e117393172a").try_into().unwrap();
            Aes256::with_backend(&key, backend).encrypt_block(&mut block);
            assert_eq!(block.to_vec(), parse("f3eed1bdb5d2a03c064b5a7e3db181f8"), "{backend:?}");
        }
    }

    #[test]
    fn nist_cavp_gfsbox_vectors() {
        // CAVP AESAVS GFSbox known-answer vectors (all-zero key).
        let cases_128 = [
            ("f34481ec3cc627bacd5dc3fb08f273e6", "0336763e966d92595a567cc9ce537f5e"),
            ("9798c4640bad75c7c3227db910174e72", "a9a1631bf4996954ebc093957b234589"),
            ("96ab5c2ff612d9dfaae8c31f30c42168", "ff4f8391a6a40ca5b25d23bedd44a597"),
        ];
        let cases_256 = [
            ("014730f80ac625fe84f026c60bfd547d", "5c9d844ed46f9885085e5d6a4f94c7d7"),
            ("0b24af36193ce4665f2825d7b4749c98", "a9ff75bd7cf6613d3731c77c3b6d0c04"),
            ("761c1fe41a18acf20d241650611d90f1", "623a52fcea5d443e48d9181ab32c7421"),
        ];
        for backend in BACKENDS {
            let c128 = Aes128::with_backend(&[0u8; 16], backend);
            for (pt, ct) in cases_128 {
                let mut block: Block = parse(pt).try_into().unwrap();
                c128.encrypt_block(&mut block);
                assert_eq!(block.to_vec(), parse(ct), "aes128 {backend:?} {pt}");
                c128.decrypt_block(&mut block);
                assert_eq!(block.to_vec(), parse(pt), "aes128 {backend:?} {pt}");
            }
            let c256 = Aes256::with_backend(&[0u8; 32], backend);
            for (pt, ct) in cases_256 {
                let mut block: Block = parse(pt).try_into().unwrap();
                c256.encrypt_block(&mut block);
                assert_eq!(block.to_vec(), parse(ct), "aes256 {backend:?} {pt}");
                c256.decrypt_block(&mut block);
                assert_eq!(block.to_vec(), parse(pt), "aes256 {backend:?} {pt}");
            }
        }
    }

    #[test]
    fn table_backend_matches_sbox_oracle() {
        // Differential: random keys/blocks, encrypt and decrypt must be
        // byte-identical across backends.
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..50 {
            let mut key = [0u8; 32];
            for b in key.iter_mut() {
                *b = next() as u8;
            }
            let oracle = Aes256::new(&key);
            let table = Aes256::with_backend(&key, CipherBackend::Table);
            let mut key128 = [0u8; 16];
            key128.copy_from_slice(&key[..16]);
            let oracle128 = Aes128::new(&key128);
            let table128 = Aes128::with_backend(&key128, CipherBackend::Table);
            for _ in 0..8 {
                let mut block = [0u8; 16];
                for b in block.iter_mut() {
                    *b = next() as u8;
                }
                let (mut a, mut b2) = (block, block);
                oracle.encrypt_block(&mut a);
                table.encrypt_block(&mut b2);
                assert_eq!(a, b2);
                oracle.decrypt_block(&mut a);
                table.decrypt_block(&mut b2);
                assert_eq!(a, b2);
                assert_eq!(a, block);
                let (mut a, mut b2) = (block, block);
                oracle128.encrypt_block(&mut a);
                table128.encrypt_block(&mut b2);
                assert_eq!(a, b2);
                oracle128.decrypt_block(&mut a);
                table128.decrypt_block(&mut b2);
                assert_eq!(a, b2);
            }
        }
    }

    #[test]
    fn backend_selection_and_env_parsing() {
        assert_eq!(CipherBackend::default(), CipherBackend::Sbox);
        assert_eq!(Aes256::new(&[0u8; 32]).backend(), CipherBackend::Sbox);
        assert_eq!(CipherBackend::from_env_value(None), CipherBackend::Sbox);
        assert_eq!(CipherBackend::from_env_value(Some("")), CipherBackend::Sbox);
        assert_eq!(CipherBackend::from_env_value(Some("nonsense")), CipherBackend::Sbox);
        assert_eq!(CipherBackend::from_env_value(Some("table")), CipherBackend::Table);
        assert_eq!(CipherBackend::from_env_value(Some("Table")), CipherBackend::Table);
        assert_eq!(CipherBackend::from_env_value(Some("sbox")), CipherBackend::Sbox);
    }

    #[test]
    fn roundtrip_many_random_blocks() {
        // Deterministic pseudo-random coverage of the round-trip property.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut key = [0u8; 32];
        for b in key.iter_mut() {
            *b = next() as u8;
        }
        for backend in BACKENDS {
            let cipher = Aes256::with_backend(&key, backend);
            for _ in 0..200 {
                let mut block = [0u8; 16];
                for b in block.iter_mut() {
                    *b = next() as u8;
                }
                let orig = block;
                cipher.encrypt_block(&mut block);
                assert_ne!(block, orig);
                cipher.decrypt_block(&mut block);
                assert_eq!(block, orig);
            }
        }
    }

    #[test]
    fn different_keys_differ() {
        let mut b1: Block = *b"0123456789abcdef";
        let mut b2: Block = *b"0123456789abcdef";
        Aes256::new(&[1u8; 32]).encrypt_block(&mut b1);
        Aes256::new(&[2u8; 32]).encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn gmul_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(0x01, 0xab), 0xab);
        assert_eq!(gmul(0x00, 0xff), 0x00);
    }

    #[test]
    fn t_table_consistency_with_sbox_round() {
        // TE0 folds SubBytes + MixColumns of a lone byte at row 0.
        for x in 0..=255u8 {
            let s = SBOX[x as usize];
            let expect = u32::from_be_bytes([gmul(s, 2), s, s, gmul(s, 3)]);
            assert_eq!(TE0[x as usize], expect);
            // Rotation structure: TE1..TE3 are byte rotations of TE0.
            assert_eq!(TE1[x as usize], TE0[x as usize].rotate_right(8));
            assert_eq!(TE2[x as usize], TE0[x as usize].rotate_right(16));
            assert_eq!(TE3[x as usize], TE0[x as usize].rotate_right(24));
            assert_eq!(TD1[x as usize], TD0[x as usize].rotate_right(8));
            assert_eq!(TD2[x as usize], TD0[x as usize].rotate_right(16));
            assert_eq!(TD3[x as usize], TD0[x as usize].rotate_right(24));
        }
    }

    #[test]
    fn inv_mix_word_matches_bytewise_inv_mix_columns() {
        let mut state: Block = core::array::from_fn(|i| (i * 31 + 7) as u8);
        let words = load_words(&state);
        inv_mix_columns(&mut state);
        let expect = load_words(&state);
        for (w, e) in words.iter().zip(expect.iter()) {
            assert_eq!(inv_mix_word(*w), *e);
        }
    }

    #[test]
    fn shift_rows_inverse() {
        let mut s: Block = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_inverse() {
        let mut s: Block = core::array::from_fn(|i| (i * 17 + 3) as u8);
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }
}
