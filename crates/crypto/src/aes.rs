//! AES block cipher as specified in FIPS 197.
//!
//! The paper encrypts the sealed-bottle payload with AES under the 256-bit
//! profile key, so [`Aes256`] is the workhorse; [`Aes128`] is provided for
//! completeness and for the microbenchmarks of Table IV.
//!
//! This is a straightforward table-free implementation (S-box lookups only),
//! prioritising auditability over raw throughput. Throughput is still in the
//! hundreds of MB/s range in release builds, far more than the protocol
//! needs (payloads are a few dozen bytes).

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// One AES block.
pub type Block = [u8; BLOCK_LEN];

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 15] =
    [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a];

/// Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// A key-scheduled AES cipher (generic over the number of rounds).
///
/// Use [`Aes128::new`] or [`Aes256::new`] to construct one.
#[derive(Debug, Clone)]
pub struct AesCipher {
    round_keys: Vec<[u8; 16]>,
}

/// AES-128: 10 rounds, 16-byte key.
#[derive(Debug, Clone)]
pub struct Aes128(AesCipher);

/// AES-256: 14 rounds, 32-byte key. The profile key of the Sealed Bottle
/// mechanism is used directly as an AES-256 key.
#[derive(Debug, Clone)]
pub struct Aes256(AesCipher);

impl Aes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        Aes128(AesCipher::expand(key, 4, 10))
    }
}

impl Aes256 {
    /// Expands a 256-bit key.
    pub fn new(key: &[u8; 32]) -> Self {
        Aes256(AesCipher::expand(key, 8, 14))
    }
}

/// A block cipher with a 16-byte block: the common interface used by
/// [`crate::modes`].
pub trait BlockCipher {
    /// Encrypts one 16-byte block in place.
    fn encrypt_block(&self, block: &mut Block);
    /// Decrypts one 16-byte block in place.
    fn decrypt_block(&self, block: &mut Block);
}

impl BlockCipher for Aes128 {
    fn encrypt_block(&self, block: &mut Block) {
        self.0.encrypt_block(block)
    }
    fn decrypt_block(&self, block: &mut Block) {
        self.0.decrypt_block(block)
    }
}

impl BlockCipher for Aes256 {
    fn encrypt_block(&self, block: &mut Block) {
        self.0.encrypt_block(block)
    }
    fn decrypt_block(&self, block: &mut Block) {
        self.0.decrypt_block(block)
    }
}

impl AesCipher {
    /// FIPS 197 key expansion. `nk` is the key length in 32-bit words,
    /// `rounds` the number of rounds (10 for AES-128, 14 for AES-256).
    fn expand(key: &[u8], nk: usize, rounds: usize) -> Self {
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([prev[0] ^ temp[0], prev[1] ^ temp[1], prev[2] ^ temp[2], prev[3] ^ temp[3]]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        AesCipher { round_keys }
    }

    fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }

    fn encrypt_block(&self, state: &mut Block) {
        add_round_key(state, &self.round_keys[0]);
        let nr = self.rounds();
        for round in 1..nr {
            sub_bytes(state);
            shift_rows(state);
            mix_columns(state);
            add_round_key(state, &self.round_keys[round]);
        }
        sub_bytes(state);
        shift_rows(state);
        add_round_key(state, &self.round_keys[nr]);
    }

    fn decrypt_block(&self, state: &mut Block) {
        let nr = self.rounds();
        add_round_key(state, &self.round_keys[nr]);
        for round in (1..nr).rev() {
            inv_shift_rows(state);
            inv_sub_bytes(state);
            add_round_key(state, &self.round_keys[round]);
            inv_mix_columns(state);
        }
        inv_shift_rows(state);
        inv_sub_bytes(state);
        add_round_key(state, &self.round_keys[0]);
    }
}

// The state is stored column-major as in FIPS 197: byte index = 4*col + row.

fn add_round_key(state: &mut Block, rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut Block) {
    // Row r is shifted left by r positions.
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[4 * col + row] = s[4 * ((col + row) % 4) + row];
        }
    }
}

fn inv_shift_rows(state: &mut Block) {
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[4 * ((col + row) % 4) + row] = s[4 * col + row];
        }
    }
}

fn mix_columns(state: &mut Block) {
    for col in 0..4 {
        let c = [state[4 * col], state[4 * col + 1], state[4 * col + 2], state[4 * col + 3]];
        state[4 * col] = gmul(c[0], 2) ^ gmul(c[1], 3) ^ c[2] ^ c[3];
        state[4 * col + 1] = c[0] ^ gmul(c[1], 2) ^ gmul(c[2], 3) ^ c[3];
        state[4 * col + 2] = c[0] ^ c[1] ^ gmul(c[2], 2) ^ gmul(c[3], 3);
        state[4 * col + 3] = gmul(c[0], 3) ^ c[1] ^ c[2] ^ gmul(c[3], 2);
    }
}

fn inv_mix_columns(state: &mut Block) {
    for col in 0..4 {
        let c = [state[4 * col], state[4 * col + 1], state[4 * col + 2], state[4 * col + 3]];
        state[4 * col] = gmul(c[0], 14) ^ gmul(c[1], 11) ^ gmul(c[2], 13) ^ gmul(c[3], 9);
        state[4 * col + 1] = gmul(c[0], 9) ^ gmul(c[1], 14) ^ gmul(c[2], 11) ^ gmul(c[3], 13);
        state[4 * col + 2] = gmul(c[0], 13) ^ gmul(c[1], 9) ^ gmul(c[2], 14) ^ gmul(c[3], 11);
        state[4 * col + 3] = gmul(c[0], 11) ^ gmul(c[1], 13) ^ gmul(c[2], 9) ^ gmul(c[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(hex: &str) -> Vec<u8> {
        (0..hex.len()).step_by(2).map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn fips197_appendix_c1_aes128() {
        let key: [u8; 16] = parse("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: Block = parse("00112233445566778899aabbccddeeff").try_into().unwrap();
        let cipher = Aes128::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), parse("69c4e0d86a7b0430d8cdb78070b4c55a"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), parse("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let key: [u8; 32] =
            parse("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let mut block: Block = parse("00112233445566778899aabbccddeeff").try_into().unwrap();
        let cipher = Aes256::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), parse("8ea2b7ca516745bfeafc49904b496089"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), parse("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn nist_sp800_38a_ecb_aes256_first_block() {
        // SP 800-38A F.1.5 ECB-AES256.Encrypt, block #1.
        let key: [u8; 32] =
            parse("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let mut block: Block = parse("6bc1bee22e409f96e93d7e117393172a").try_into().unwrap();
        Aes256::new(&key).encrypt_block(&mut block);
        assert_eq!(block.to_vec(), parse("f3eed1bdb5d2a03c064b5a7e3db181f8"));
    }

    #[test]
    fn roundtrip_many_random_blocks() {
        // Deterministic pseudo-random coverage of the round-trip property.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut key = [0u8; 32];
        for b in key.iter_mut() {
            *b = next() as u8;
        }
        let cipher = Aes256::new(&key);
        for _ in 0..200 {
            let mut block = [0u8; 16];
            for b in block.iter_mut() {
                *b = next() as u8;
            }
            let orig = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, orig);
            cipher.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn different_keys_differ() {
        let mut b1: Block = *b"0123456789abcdef";
        let mut b2: Block = *b"0123456789abcdef";
        Aes256::new(&[1u8; 32]).encrypt_block(&mut b1);
        Aes256::new(&[2u8; 32]).encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn gmul_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(0x01, 0xab), 0xab);
        assert_eq!(gmul(0x00, 0xff), 0x00);
    }

    #[test]
    fn shift_rows_inverse() {
        let mut s: Block = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_inverse() {
        let mut s: Block = core::array::from_fn(|i| (i * 17 + 3) as u8);
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }
}
