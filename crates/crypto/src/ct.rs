//! Constant-time comparison.
//!
//! Tag and confirmation checks in the protocols must not leak, through
//! timing, how many prefix bytes matched — an adversary probing candidate
//! keys (paper §IV-A, dictionary profiling) would otherwise gain an oracle.

/// Compares two byte strings in time dependent only on their lengths.
///
/// Returns `false` immediately when the lengths differ (lengths are public
/// in every use in this workspace).
///
/// # Example
///
/// ```
/// assert!(msb_crypto::ct::eq(b"tag", b"tag"));
/// assert!(!msb_crypto::ct::eq(b"tag", b"tbg"));
/// assert!(!msb_crypto::ct::eq(b"tag", b"tagg"));
/// ```
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    // Collapse without branching on the value.
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::eq;

    #[test]
    fn equal_slices() {
        assert!(eq(&[], &[]));
        assert!(eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_content() {
        assert!(!eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!eq(&[0], &[255]));
    }

    #[test]
    fn unequal_length() {
        assert!(!eq(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn difference_in_any_position_detected() {
        let a = [7u8; 64];
        for i in 0..64 {
            let mut b = a;
            b[i] ^= 0x80;
            assert!(!eq(&a, &b), "difference at byte {i} missed");
        }
    }
}
