//! Profile machinery for the Sealed Bottle private-matching mechanism
//! (paper §II–III).
//!
//! A user's profile is a set of `category:value` attributes. This crate
//! implements everything between raw attribute strings and the symmetric
//! key material the protocols need:
//!
//! * [`normalize`] — the profile-normalization pipeline of §III-B
//!   (lowercasing, whitespace/punctuation stripping, accent folding,
//!   number-to-words, plural-to-singular, abbreviation expansion), so that
//!   attributes that users would consider equal hash identically.
//! * [`attribute`] — the [`attribute::Attribute`] type and its
//!   SHA-256 [`attribute::AttributeHash`] (Eq. 2).
//! * [`profile`] — sorted [`profile::ProfileVector`]s and
//!   the derived [`profile::ProfileKey`] (Eq. 3).
//! * [`request`] — the initiator's flexible request `A_t = (N_t, O_t)` with
//!   necessary/optional attributes and similarity threshold θ (§II-A).
//! * [`remainder`] — the remainder vector (Eq. 4, Theorem 1) and the
//!   candidate fast check.
//! * [`matching`] — candidate-profile-vector enumeration (Eqs. 5–8) and
//!   candidate-key derivation.
//! * [`hint`] — the hint matrix `M = [C, B]`, `C = [I | R]` (Eqs. 9–13),
//!   built over the Goldilocks-448 prime field so recovered attribute
//!   hashes are exact.
//! * [`entropy`] — attribute/profile entropy and the ϕ-entropy privacy
//!   policies of Protocol 3 (Defs. 4–6).
//!
//! # Example: fuzzy match end to end
//!
//! ```
//! use msb_profile::attribute::Attribute;
//! use msb_profile::profile::Profile;
//! use msb_profile::request::RequestProfile;
//! use msb_profile::matching::{enumerate_candidate_keys, MatchConfig};
//!
//! let attr = |c: &str, v: &str| Attribute::new(c, v);
//! // The initiator wants an engineer who likes 2 of 3 listed interests.
//! let request = RequestProfile::new(
//!     vec![attr("profession", "engineer")],
//!     vec![attr("interest", "basketball"),
//!          attr("interest", "jazz"),
//!          attr("interest", "go")],
//!     2,
//! ).unwrap();
//! use rand::{rngs::StdRng, SeedableRng};
//! let bundle = request.seal(11, &mut StdRng::seed_from_u64(7));
//!
//! // A user owning the necessary attribute and 2 of the 3 optional ones
//! // recovers the request's profile key.
//! let user = Profile::from_attributes(vec![
//!     attr("profession", "engineer"),
//!     attr("interest", "basketball"),
//!     attr("interest", "jazz"),
//!     attr("hometown", "shanghai"),
//! ]);
//! let keys = enumerate_candidate_keys(
//!     user.vector(),
//!     &bundle.remainder,
//!     bundle.hint.as_ref(),
//!     &MatchConfig::default(),
//! );
//! assert!(keys.iter().any(|k| k.key == bundle.key));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod entropy;
pub mod hint;
pub mod matching;
pub mod normalize;
pub mod profile;
pub mod remainder;
pub mod request;
pub mod wire;

pub use attribute::{Attribute, AttributeHash};
pub use profile::{Profile, ProfileKey, ProfileVector};
pub use request::{RequestProfile, RequestVector, SealedRequest};
