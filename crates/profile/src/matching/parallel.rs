//! Deterministic parallel candidate enumeration.
//!
//! Shards the canonical backtracking walk of [`super::SearchSpace`]
//! across `std::thread::scope` workers pulling from a shared work
//! queue (a single atomic claim counter — no rayon, the build
//! environment has no crates.io access):
//!
//! 1. **Split.** Collect every prefix cursor at the shallowest depth that
//!    yields at least [`PREFIXES_PER_THREAD`] prefixes per worker (or the
//!    full depth, whichever comes first). The prefix list is in canonical
//!    order and its subtrees partition the space.
//! 2. **Count.** Workers enumerate each prefix's subtree *structurally*
//!    (no hint solves, no hashing) to count its assignments, capped at
//!    the `max_assignments` budget. From the counts the main thread
//!    computes the exact per-prefix budget the sequential walk would
//!    consume before hitting the global cap.
//! 3. **Produce.** Workers re-walk exactly the budgeted assignments,
//!    performing the expensive per-assignment work (hint-matrix solve +
//!    SHA-256 key derivation).
//! 4. **Merge.** The main thread concatenates per-prefix results in
//!    prefix order — which *is* the sequential visit order — and applies
//!    the same first-occurrence key deduplication, so output, ordering
//!    and [`MatchStats`] are bit-identical to the sequential API for
//!    every thread count.
//!
//! Prefixes are claimed dynamically: every worker pulls the next
//! unclaimed prefix index from a shared atomic counter, so a worker
//! stuck in one huge subtree never idles its siblings — the skewed
//! subtree sizes of real profiles self-balance, unlike the static
//! round-robin partition this replaced. Which worker computes which
//! prefix is scheduling-dependent, but it *cannot* affect the output:
//! results are merged into slots indexed by prefix, not by worker, so
//! output, ordering and [`MatchStats`] stay bit-identical to the
//! sequential API for every thread count and every interleaving.

use super::{
    complete_assignment, enumerate_assignments, enumerate_candidate_keys_with_stats,
    CandidateAssignment, CandidateKey, MatchConfig, MatchStats, SearchSpace,
};
use crate::hint::HintMatrix;
use crate::profile::ProfileVector;
use crate::remainder::RemainderVector;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Target number of prefixes per worker; more prefixes smooth out skew
/// between subtrees at the cost of a deeper (still cheap) split pass.
const PREFIXES_PER_THREAD: usize = 8;

/// How many worker threads the responder path may use.
///
/// `Parallelism` is a plain copyable config value plumbed through
/// `ProtocolConfig`; `1` means the unchanged sequential code path. The
/// default reads the `MSB_THREADS` environment variable once per process
/// (absent/invalid → sequential), which is how the CI matrix runs the
/// whole test suite under different thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// The sequential path: no worker threads, byte-for-byte the
    /// historical behaviour.
    pub const SEQUENTIAL: Parallelism = Parallelism(1);

    /// A fixed thread count; `0` is clamped to `1`.
    pub fn new(threads: usize) -> Self {
        Parallelism(threads.max(1))
    }

    /// The configured thread count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.0
    }

    /// Whether this runs on the caller's thread only.
    pub fn is_sequential(&self) -> bool {
        self.0 == 1
    }

    /// Reads `MSB_THREADS` (cached after the first call). Absent, empty
    /// or unparsable values mean sequential.
    pub fn from_env() -> Self {
        static ENV_THREADS: OnceLock<usize> = OnceLock::new();
        let threads = *ENV_THREADS.get_or_init(|| {
            std::env::var("MSB_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1)
        });
        Parallelism(threads)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::from_env()
    }
}

/// Maps `f` over `0..n` across `threads` scoped workers pulling
/// indices from a shared work queue (one atomic claim counter),
/// returning results in index order. Each worker loops claiming the
/// next unclaimed index until the queue is exhausted, so skewed
/// per-index costs self-balance instead of serializing on the
/// unluckiest worker. With one worker (or `n <= 1`) it runs inline on
/// the caller's thread.
///
/// Panics in `f` propagate to the caller.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n).max(1);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    // The work queue: claiming an index is one fetch_add. Relaxed
    // suffices — the only cross-thread handoff that must be ordered is
    // the results, and `scope`'s join synchronizes those.
    let next = &AtomicUsize::new(0);
    // Per-worker claim counts and busy time go to the opt-in global
    // registry. Which worker claims which index is scheduling-dependent
    // (and busy time is wall clock), so these series are explicitly
    // outside the determinism contract — they must never feed the
    // deterministic sinks or the output merge (results are slotted by
    // index, not worker).
    let observe = msb_telemetry::global::enabled();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut claims = 0u64;
                    let started = observe.then(std::time::Instant::now);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        claims += 1;
                        out.push((i, f(i)));
                    }
                    if let Some(t0) = started {
                        let busy_us = t0.elapsed().as_micros() as u64;
                        msb_telemetry::global::with(|m| {
                            m.incr("match.worker.claims", w as u32, claims);
                            m.incr("match.worker.busy_us", w as u32, busy_us);
                        });
                    }
                    out
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for handle in handles {
            for (i, v) in handle.join().expect("enumeration worker panicked") {
                slots[i] = Some(v);
            }
        }
        slots.into_iter().map(|s| s.expect("the claim counter covers every index")).collect()
    })
}

/// Picks the split depth: the shallowest prefix set with at least
/// `threads * PREFIXES_PER_THREAD` entries, falling back to the deepest
/// set that stays under the size limit (the set at every depth is
/// complete, so any depth is correct — deeper only balances better).
fn split_prefixes(space: &SearchSpace<'_>, threads: usize) -> Vec<super::Cursor> {
    let target = threads.saturating_mul(PREFIXES_PER_THREAD);
    let limit = target.saturating_mul(64).max(4096);
    let mut current = vec![space.root()];
    for depth in 1..=space.depth() {
        match space.prefixes_at_depth(depth, limit) {
            Some(next) => {
                // An empty complete prefix set means no assignment
                // survives this depth: the whole space is empty.
                let done = next.is_empty() || next.len() >= target;
                current = next;
                if done {
                    break;
                }
            }
            // Too many prefixes at this depth; the previous (complete)
            // set already bounds memory and is correct.
            None => break,
        }
    }
    current
}

/// Per-prefix budgets replaying the sequential `max_assignments` cap:
/// the sequential walk consumes prefixes in order, so the first `cap`
/// assignments of the concatenated streams are exactly its visit set.
fn budgets_for(counts: &[usize], cap: usize) -> Vec<usize> {
    let mut budgets = vec![0usize; counts.len()];
    let mut left = cap;
    for (b, &c) in budgets.iter_mut().zip(counts) {
        *b = c.min(left);
        left -= *b;
    }
    budgets
}

/// Structural assignment counts per prefix (pass 2 of the module docs).
///
/// Prefixes are counted in canonical-order chunks with a running budget:
/// once the cumulative count reaches `cap`, every later prefix's
/// sequential budget is provably zero (the cap is consumed in prefix
/// order), so its subtree is never walked and its count is left at zero
/// — `budgets_for` yields the same budgets either way. Within a chunk,
/// each count is capped at the budget left when the chunk started, which
/// bounds the pass at roughly one chunk of overshoot instead of
/// `prefixes × cap` structural visits on truncation-heavy spaces.
fn count_pass(
    space: &SearchSpace<'_>,
    prefixes: &[super::Cursor],
    cap: usize,
    threads: usize,
) -> Vec<usize> {
    let chunk = threads.saturating_mul(PREFIXES_PER_THREAD).max(1);
    let mut counts = vec![0usize; prefixes.len()];
    let mut left = cap;
    let mut start = 0usize;
    while start < prefixes.len() && left > 0 {
        let end = (start + chunk).min(prefixes.len());
        let chunk_counts = par_map(end - start, threads, |j| {
            let mut n = 0usize;
            let mut remaining = left;
            let mut cur = prefixes[start + j].clone();
            space.visit_from(&mut cur, &mut remaining, &mut |_| {
                n += 1;
                true
            });
            n
        });
        for (j, c) in chunk_counts.into_iter().enumerate() {
            counts[start + j] = c;
            left = left.saturating_sub(c);
        }
        start = end;
    }
    counts
}

/// The shared split/count/budget/produce scaffolding behind both
/// parallel entry points: shards the space, replays the sequential cap,
/// and maps `f` over exactly the budgeted assignments of each prefix.
/// Results come back grouped by prefix, in canonical order. `None` means
/// the space didn't split (degenerate or empty) and the caller should
/// run the sequential path.
fn shard_walk<T, F>(
    space: &SearchSpace<'_>,
    cap: usize,
    threads: usize,
    f: F,
) -> Option<Vec<Vec<T>>>
where
    T: Send,
    F: Fn(&super::Cursor) -> T + Sync,
{
    let prefixes = split_prefixes(space, threads);
    if prefixes.len() <= 1 {
        return None;
    }
    let counts = count_pass(space, &prefixes, cap, threads);
    let budgets = budgets_for(&counts, cap);
    Some(par_map(prefixes.len(), threads, |i| {
        let budget = budgets[i];
        let mut out = Vec::with_capacity(budget);
        if budget == 0 {
            return out;
        }
        let mut remaining = budget;
        let mut cur = prefixes[i].clone();
        space.visit_from(&mut cur, &mut remaining, &mut |c| {
            out.push(f(c));
            true
        });
        out
    }))
}

/// Parallel [`super::enumerate_candidate_keys_with_stats`]: identical
/// output (keys, order, stats, truncation) for every thread count; see
/// the module docs for the argument.
pub fn enumerate_candidate_keys_with_stats_par(
    user: &ProfileVector,
    rv: &RemainderVector,
    hint: Option<&HintMatrix>,
    config: &MatchConfig,
    parallelism: Parallelism,
) -> (Vec<CandidateKey>, MatchStats) {
    if parallelism.is_sequential() {
        return enumerate_candidate_keys_with_stats(user, rv, hint, config);
    }
    // The sequential walk visits the assignment that exhausts a zero/one
    // budget before stopping; mirror that by never budgeting below 1.
    let cap = config.max_assignments.max(1);
    let space = SearchSpace::new(user, rv, config.mode);
    let user_hashes = user.hashes();
    let Some(produced) = shard_walk(&space, cap, parallelism.threads(), |c| {
        complete_assignment(user_hashes, &c.assignment(), hint)
    }) else {
        return enumerate_candidate_keys_with_stats(user, rv, hint, config);
    };

    // Deterministic merge in prefix order == sequential visit order.
    let mut stats = MatchStats::default();
    let mut keys: Vec<CandidateKey> = Vec::new();
    for branch in produced {
        for item in branch {
            stats.assignments += 1;
            if hint.is_some() {
                stats.solves += 1;
            }
            if let Some(ck) = item {
                if !keys.iter().any(|k| k.key == ck.key) {
                    keys.push(ck);
                }
            }
        }
    }
    stats.distinct_keys = keys.len();
    stats.truncated = stats.assignments >= config.max_assignments;
    (keys, stats)
}

/// Parallel [`super::enumerate_assignments`]: identical list for every
/// thread count.
pub fn enumerate_assignments_par(
    user: &ProfileVector,
    rv: &RemainderVector,
    config: &MatchConfig,
    parallelism: Parallelism,
) -> Vec<CandidateAssignment> {
    if parallelism.is_sequential() {
        return enumerate_assignments(user, rv, config);
    }
    let cap = config.max_assignments.max(1);
    let space = SearchSpace::new(user, rv, config.mode);
    match shard_walk(&space, cap, parallelism.threads(), |c| c.assignment()) {
        Some(produced) => produced.into_iter().flatten().collect(),
        None => enumerate_assignments(user, rv, config),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{enumerate_candidate_keys_with_stats, EnumerationMode};
    use super::*;
    use crate::attribute::Attribute;
    use crate::hint::{HintConstruction, HintMatrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attrs(prefix: &str, n: usize) -> Vec<Attribute> {
        (0..n).map(|i| Attribute::new(prefix, format!("{prefix}-{i}"))).collect()
    }

    fn sorted_hashes(attrs: &[Attribute]) -> Vec<crate::attribute::AttributeHash> {
        let mut hs: Vec<_> = attrs.iter().map(Attribute::hash).collect();
        hs.sort_unstable();
        hs
    }

    /// A collision-heavy workload: small modulus, noisy profile.
    fn workload(
        p: u64,
        alpha: usize,
        opt: usize,
        beta: usize,
        noise: usize,
    ) -> (ProfileVector, RemainderVector, Option<HintMatrix>) {
        let request_attrs = attrs("req", alpha + opt);
        let nec = sorted_hashes(&request_attrs[..alpha]);
        let optional = sorted_hashes(&request_attrs[alpha..]);
        let rv = RemainderVector::new(p, &nec, &optional, beta);
        let hint = (opt > beta).then(|| {
            HintMatrix::generate(
                &optional,
                beta,
                HintConstruction::Cauchy,
                &mut StdRng::seed_from_u64(5),
            )
        });
        let mut owned = request_attrs;
        owned.extend(attrs("noise", noise));
        let profile = crate::profile::Profile::from_attributes(owned);
        (profile.vector().clone(), rv, hint)
    }

    #[test]
    fn parallelism_defaults_and_clamping() {
        assert!(Parallelism::SEQUENTIAL.is_sequential());
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(6).threads(), 6);
        assert!(!Parallelism::new(2).is_sequential());
    }

    #[test]
    fn par_map_orders_and_covers() {
        for threads in [1usize, 2, 3, 8, 33] {
            let out = par_map(17, threads, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
        assert!(par_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn identical_to_sequential_across_thread_counts() {
        for (p, alpha, opt, beta, noise) in
            [(2u64, 0usize, 4usize, 2usize, 8usize), (3, 1, 3, 2, 6), (11, 2, 4, 2, 10)]
        {
            let (user, rv, hint) = workload(p, alpha, opt, beta, noise);
            for mode in [EnumerationMode::Strict, EnumerationMode::Exhaustive] {
                let config = MatchConfig { mode, max_assignments: 10_000 };
                let (seq_keys, seq_stats) =
                    enumerate_candidate_keys_with_stats(&user, &rv, hint.as_ref(), &config);
                let seq_assignments = enumerate_assignments(&user, &rv, &config);
                for threads in [2usize, 4, 8] {
                    let (par_keys, par_stats) = enumerate_candidate_keys_with_stats_par(
                        &user,
                        &rv,
                        hint.as_ref(),
                        &config,
                        Parallelism::new(threads),
                    );
                    assert_eq!(par_keys, seq_keys, "keys p={p} mode={mode:?} t={threads}");
                    assert_eq!(par_stats, seq_stats, "stats p={p} mode={mode:?} t={threads}");
                    let par_assignments =
                        enumerate_assignments_par(&user, &rv, &config, Parallelism::new(threads));
                    assert_eq!(par_assignments, seq_assignments);
                }
            }
        }
    }

    #[test]
    fn truncation_point_is_replayed_exactly() {
        // p = 2 makes every attribute collide with every position: huge
        // space, so the cap binds. The parallel path must stop at the
        // same assignment the sequential walk stops at.
        let (user, rv, hint) = workload(2, 0, 6, 3, 12);
        for cap in [1usize, 7, 16, 100, 1000] {
            let config = MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: cap };
            let (seq_keys, seq_stats) =
                enumerate_candidate_keys_with_stats(&user, &rv, hint.as_ref(), &config);
            for threads in [2usize, 4] {
                let (par_keys, par_stats) = enumerate_candidate_keys_with_stats_par(
                    &user,
                    &rv,
                    hint.as_ref(),
                    &config,
                    Parallelism::new(threads),
                );
                assert_eq!(par_stats, seq_stats, "cap={cap} t={threads}");
                assert_eq!(par_keys, seq_keys, "cap={cap} t={threads}");
            }
        }
    }

    #[test]
    fn empty_space_yields_empty_everywhere() {
        // A user owning nothing relevant at a collision-free modulus.
        let request_attrs = attrs("req", 3);
        let optional = sorted_hashes(&request_attrs);
        let rv = RemainderVector::new(97, &[], &optional, 3);
        let profile = crate::profile::Profile::from_attributes(attrs("other", 4));
        let user = profile.vector().clone();
        let config = MatchConfig::default();
        for threads in [2usize, 4] {
            let (keys, stats) = enumerate_candidate_keys_with_stats_par(
                &user,
                &rv,
                None,
                &config,
                Parallelism::new(threads),
            );
            let (seq_keys, seq_stats) =
                enumerate_candidate_keys_with_stats(&user, &rv, None, &config);
            assert_eq!(keys, seq_keys);
            assert_eq!(stats, seq_stats);
            assert_eq!(stats.assignments, 0);
        }
    }
}
