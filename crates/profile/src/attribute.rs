//! Attributes and attribute hashes (paper §II-A, Eq. 2).
//!
//! Every attribute has a *category* header and a *value* field
//! (`interest:basketball`). Equality for matching purposes is equality of
//! the SHA-256 hash of the normalized `category:value` string.

use crate::normalize::Normalizer;
use msb_bignum::BigUint;
use msb_crypto::sha256::Sha256;
use std::fmt;

/// A profile attribute: a category header plus a value.
///
/// # Example
///
/// ```
/// use msb_profile::attribute::Attribute;
///
/// let a = Attribute::new("Interest", "Computer Games");
/// let b = Attribute::new("interest", "computergame");
/// assert_eq!(a.hash(), b.hash()); // normalization makes them equal
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attribute {
    category: String,
    value: String,
}

impl Attribute {
    /// Creates an attribute from raw user input.
    pub fn new(category: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute { category: category.into(), value: value.into() }
    }

    /// The raw category header.
    pub fn category(&self) -> &str {
        &self.category
    }

    /// The raw value field.
    pub fn value(&self) -> &str {
        &self.value
    }

    /// Canonical normalized form `category:value` using the default
    /// normalizer.
    pub fn canonical(&self) -> String {
        self.canonical_with(&Normalizer::default())
    }

    /// Canonical normalized form with a caller-supplied normalizer (both
    /// parties in a match must use the same one).
    pub fn canonical_with(&self, normalizer: &Normalizer) -> String {
        format!("{}:{}", normalizer.normalize(&self.category), normalizer.normalize(&self.value))
    }

    /// SHA-256 hash of the canonical form — the `h = H(a)` of Eq. 2.
    pub fn hash(&self) -> AttributeHash {
        AttributeHash(Sha256::digest(self.canonical().as_bytes()))
    }

    /// Hash of the canonical form bound to extra context bytes, used for
    /// the location-bound static attributes of §III-D-3:
    /// `H(attribute ‖ dynamic key)`.
    pub fn hash_bound(&self, context: &[u8]) -> AttributeHash {
        AttributeHash(Sha256::digest_parts(&[self.canonical().as_bytes(), b"|", context]))
    }

    /// Hashes a batch of attributes, compressing equal-length canonical
    /// forms four at a time via [`Sha256::digest_many`]. Output order
    /// matches input order; each entry equals [`Attribute::hash`].
    pub fn hash_many<'a>(attrs: impl IntoIterator<Item = &'a Attribute>) -> Vec<AttributeHash> {
        let canonical: Vec<String> = attrs.into_iter().map(Attribute::canonical).collect();
        let parts: Vec<&[u8]> = canonical.iter().map(|c| c.as_bytes()).collect();
        Sha256::digest_many(&parts).into_iter().map(AttributeHash).collect()
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.category, self.value)
    }
}

/// A 256-bit attribute hash, ordered lexicographically (big-endian), which
/// is the sort order of profile vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttributeHash([u8; 32]);

impl AttributeHash {
    /// Wraps raw digest bytes (used when hashes arrive from solving the
    /// hint system rather than from hashing an attribute).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        AttributeHash(bytes)
    }

    /// The digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// The hash as an integer for modular arithmetic — remainder-vector
    /// entries are `h mod p` over this value.
    pub fn to_biguint(&self) -> BigUint {
        BigUint::from_be_bytes(&self.0)
    }

    /// Recovers a hash from a field element produced by the hint-matrix
    /// solve. Returns `None` if the element does not fit in 256 bits
    /// (which proves the candidate assignment was wrong).
    pub fn from_biguint(v: &BigUint) -> Option<Self> {
        if v.bit_len() > 256 {
            return None;
        }
        let bytes = v.to_be_bytes_padded(32);
        let arr: [u8; 32] = bytes.try_into().expect("padded to 32 bytes");
        Some(AttributeHash(arr))
    }

    /// The remainder `h mod p` (Eq. 4).
    pub fn remainder(&self, p: u64) -> u64 {
        self.to_biguint().rem_u64(p)
    }
}

impl fmt::Debug for AttributeHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttributeHash(")?;
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_equivalence() {
        let a = Attribute::new("Interest", "Basket-Ball");
        let b = Attribute::new("interest", "basketball");
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn category_matters() {
        let a = Attribute::new("interest", "go");
        let b = Attribute::new("hometown", "go");
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn separator_cannot_be_spoofed() {
        // "a:bc" vs "ab:c" must differ even though the concatenation of
        // normalized parts could collide without the separator.
        let a = Attribute::new("a", "bc");
        let b = Attribute::new("ab", "c");
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn bound_hash_differs_from_plain() {
        let a = Attribute::new("interest", "jazz");
        assert_ne!(a.hash(), a.hash_bound(b"epoch-1"));
        assert_ne!(a.hash_bound(b"epoch-1"), a.hash_bound(b"epoch-2"));
    }

    #[test]
    fn biguint_roundtrip() {
        let h = Attribute::new("interest", "jazz").hash();
        let v = h.to_biguint();
        assert_eq!(AttributeHash::from_biguint(&v), Some(h));
    }

    #[test]
    fn from_biguint_rejects_oversize() {
        let too_big = BigUint::one().shl_bits(256);
        assert_eq!(AttributeHash::from_biguint(&too_big), None);
    }

    #[test]
    fn remainder_matches_biguint_mod() {
        let h = Attribute::new("interest", "opera").hash();
        for p in [11u64, 23, 97] {
            assert_eq!(h.remainder(p), h.to_biguint().rem_u64(p));
        }
    }

    #[test]
    fn display_shows_raw_form() {
        let a = Attribute::new("Interest", "Computer Games");
        assert_eq!(a.to_string(), "Interest:Computer Games");
    }

    #[test]
    fn ordering_is_bytewise() {
        let mut h1 = [0u8; 32];
        let mut h2 = [0u8; 32];
        h1[0] = 1;
        h2[0] = 2;
        assert!(AttributeHash::from_bytes(h1) < AttributeHash::from_bytes(h2));
    }
}
