//! Candidate-profile-vector enumeration (paper §III-C, Eqs. 5–8) and
//! candidate-key derivation.
//!
//! Given a request's remainder vector, a relay computes which of their own
//! attributes *could* occupy each request position (same remainder mod
//! `p`, Eq. 5), subject to:
//!
//! * every necessary position is matched (Eq. 6),
//! * at most γ optional positions are unknown (Eq. 7),
//! * matched positions use strictly increasing indices into the user's
//!   sorted profile vector within each sorted block (order consistency,
//!   Eq. 8), and no user attribute is used twice across blocks.
//!
//! Each surviving assignment, completed through the hint matrix, yields a
//! candidate profile key (the set the paper calls `{K¹_c … K^z_c}`).
//!
//! ## Strict vs. exhaustive enumeration
//!
//! The paper marks a position *unknown* only when **no** user attribute
//! has the right remainder. If a user happens to own a *colliding but
//! different* attribute at a position they do not truly satisfy, the
//! literal rule forces the wrong hash into every combination and the true
//! key is never generated — a false negative the paper does not address.
//! [`EnumerationMode::Exhaustive`] (the default) additionally explores the
//! unknown branch at matched positions, which provably restores the
//! no-false-negative guarantee at a small bounded cost;
//! [`EnumerationMode::Strict`] reproduces the paper's behaviour exactly
//! and is used by the evaluation harness where the paper's counts are
//! being reproduced.
//!
//! ## Work splitting and deterministic parallelism
//!
//! The backtracking search is expressed as a [`SearchSpace`] (the
//! read-only problem description) walked by a [`Cursor`] (one partial
//! assignment). Every enumeration — sequential or parallel — visits
//! completed assignments in one *canonical order*: positions are filled
//! left to right (necessary block, then optional block), candidate user
//! attributes are tried in ascending index order, and the `unknown`
//! branch of an optional position is tried last. The sequential API
//! walks the whole space from the root cursor.
//!
//! The [`parallel`] submodule splits the same space statically: it
//! collects, in canonical order, every cursor at some shallow depth `d`
//! (a *prefix* of the first `d` positions), and hands prefixes to
//! `std::thread::scope` workers round-robin. Because the subtrees below
//! two distinct prefixes are disjoint, and the concatenation of their
//! assignment streams *in prefix order* is exactly the canonical order,
//! merging per-prefix results by prefix index reproduces the sequential
//! output bit for bit — same candidate keys, same order, same
//! deduplication, same [`MatchStats`] counters, same `max_assignments`
//! truncation point — independent of thread count or scheduling. The
//! `max_assignments` cap is replayed exactly via a cheap counting pass
//! (structural enumeration only, no hint solves) that fixes each
//! prefix's budget before any expensive per-assignment work happens.

pub mod parallel;

use crate::attribute::AttributeHash;
use crate::hint::HintMatrix;
use crate::profile::{ProfileKey, ProfileVector};
use crate::remainder::RemainderVector;
use msb_crypto::sha256::Sha256;
use std::cell::RefCell;

/// Which positions may be declared unknown during enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnumerationMode {
    /// Unknown is always an option (within the γ budget). No false
    /// negatives, slightly more assignments to try. The default.
    #[default]
    Exhaustive,
    /// The paper's literal rule: unknown only where the candidate subset
    /// `H_k(r)` is empty.
    Strict,
}

/// Limits and mode for candidate enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchConfig {
    /// Enumeration mode (see [`EnumerationMode`]).
    pub mode: EnumerationMode,
    /// Upper bound on completed assignments to process; protects against
    /// pathological profiles (e.g. a dictionary attacker with thousands of
    /// attributes — exactly the asymmetry Protocol 2 exploits).
    pub max_assignments: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig { mode: EnumerationMode::default(), max_assignments: 4096 }
    }
}

/// One structurally valid assignment of user attributes to request
/// positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateAssignment {
    /// User attribute index for each necessary position.
    pub necessary: Vec<usize>,
    /// User attribute index or unknown for each optional position.
    pub optional: Vec<Option<usize>>,
}

impl CandidateAssignment {
    /// Indices of the user's own attributes consumed by this assignment.
    pub fn used_indices(&self) -> Vec<usize> {
        let mut v: Vec<usize> =
            self.necessary.iter().copied().chain(self.optional.iter().flatten().copied()).collect();
        v.sort_unstable();
        v
    }

    /// Number of unknown optional positions.
    pub fn unknown_count(&self) -> usize {
        self.optional.iter().filter(|o| o.is_none()).count()
    }
}

/// A derived candidate profile key together with the evidence that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateKey {
    /// The candidate profile key `K_c = H(H'_c)`.
    pub key: ProfileKey,
    /// The recovered full request vector (necessary block then optional
    /// block) that hashed to `key`.
    pub recovered: Vec<AttributeHash>,
    /// Indices into the user's profile vector used as known values.
    pub used_indices: Vec<usize>,
}

/// Counters describing an enumeration run (feeds Table VI and Fig. 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Structurally valid assignments visited.
    pub assignments: usize,
    /// Linear-system solves performed (hint-matrix invocations).
    pub solves: usize,
    /// Distinct candidate keys produced.
    pub distinct_keys: usize,
    /// Whether the `max_assignments` cap cut enumeration short.
    pub truncated: bool,
}

/// Does at least one structurally valid assignment exist? This is the
/// relay's *fast check*: strictly cheaper than enumeration because it
/// stops at the first witness.
pub fn has_candidate_assignment(user: &ProfileVector, rv: &RemainderVector) -> bool {
    let mut found = false;
    visit_assignments(user, rv, EnumerationMode::Exhaustive, usize::MAX, &mut |_| {
        found = true;
        false // stop
    });
    found
}

/// Enumerates every structurally valid assignment (bounded by
/// `config.max_assignments`) and returns them.
pub fn enumerate_assignments(
    user: &ProfileVector,
    rv: &RemainderVector,
    config: &MatchConfig,
) -> Vec<CandidateAssignment> {
    let mut out = Vec::new();
    visit_assignments(user, rv, config.mode, config.max_assignments, &mut |a| {
        out.push(a.clone());
        true
    });
    out
}

/// Derives the candidate profile key set for `user` against a request
/// described by its remainder vector and (for fuzzy requests) hint matrix.
///
/// Keys are de-duplicated: assignments that recover the same full vector
/// produce one entry. See [`enumerate_candidate_keys_with_stats`] for the
/// instrumented variant.
pub fn enumerate_candidate_keys(
    user: &ProfileVector,
    rv: &RemainderVector,
    hint: Option<&HintMatrix>,
    config: &MatchConfig,
) -> Vec<CandidateKey> {
    enumerate_candidate_keys_with_stats(user, rv, hint, config).0
}

/// [`enumerate_candidate_keys`] plus run statistics.
pub fn enumerate_candidate_keys_with_stats(
    user: &ProfileVector,
    rv: &RemainderVector,
    hint: Option<&HintMatrix>,
    config: &MatchConfig,
) -> (Vec<CandidateKey>, MatchStats) {
    let mut stats = MatchStats::default();
    let mut keys: Vec<CandidateKey> = Vec::new();
    let user_hashes = user.hashes();

    visit_assignments(user, rv, config.mode, config.max_assignments, &mut |a| {
        stats.assignments += 1;
        if hint.is_some() {
            stats.solves += 1;
        }
        if let Some(ck) = complete_assignment(user_hashes, a, hint) {
            if !keys.iter().any(|k| k.key == ck.key) {
                keys.push(ck);
            }
        }
        true
    });

    stats.distinct_keys = keys.len();
    stats.truncated = stats.assignments >= config.max_assignments;
    (keys, stats)
}

/// Completes one structurally valid assignment into a candidate key:
/// fills the optional block through the hint matrix (or requires it fully
/// known when there is none) and hashes the recovered vector.
///
/// Shared by the sequential and parallel paths so both derive keys
/// through the same code.
pub(crate) fn complete_assignment(
    user_hashes: &[AttributeHash],
    a: &CandidateAssignment,
    hint: Option<&HintMatrix>,
) -> Option<CandidateKey> {
    // Build the optional-block partial assignment.
    let optional_partial: Vec<Option<AttributeHash>> =
        a.optional.iter().map(|slot| slot.map(|idx| user_hashes[idx])).collect();

    let optional_full: Vec<AttributeHash> = match hint {
        Some(h) => h.solve(&optional_partial),
        // No hint: only fully-known assignments can be completed.
        None => optional_partial.into_iter().collect(),
    }?;

    let necessary: Vec<AttributeHash> = a.necessary.iter().map(|&idx| user_hashes[idx]).collect();
    // Canonical order fills necessary positions outermost, so
    // consecutive assignments share the necessary-block prefix: reuse
    // its SHA-256 midstate instead of re-absorbing it per candidate.
    // Pure caching — `from_midstate(midstate(p), s) == from_hashes(p ‖ s)`
    // — so outputs are bit-identical at any thread count (each worker
    // thread has its own cache).
    let key = NECESSARY_MIDSTATE.with(|cell| {
        let mut cached = cell.borrow_mut();
        if cached.0 != necessary {
            cached.1 = ProfileKey::midstate(&necessary);
            cached.0.clear();
            cached.0.extend_from_slice(&necessary);
        }
        ProfileKey::from_midstate(&cached.1, &optional_full)
    });
    let mut recovered = necessary;
    recovered.extend(optional_full);
    debug_assert_eq!(key, ProfileKey::from_hashes(&recovered));
    Some(CandidateKey { key, recovered, used_indices: a.used_indices() })
}

thread_local! {
    /// Last-seen necessary-block prefix and its hash midstate (see
    /// [`complete_assignment`]). A fresh `Sha256` is the midstate of the
    /// empty prefix, so the initial entry is already consistent.
    static NECESSARY_MIDSTATE: RefCell<(Vec<AttributeHash>, Sha256)> =
        RefCell::new((Vec::new(), Sha256::new()));
}

/// Core backtracking enumerator. Calls `visit` for each completed
/// assignment; `visit` returning `false` aborts the walk. At most
/// `max_assignments` assignments are visited.
fn visit_assignments(
    user: &ProfileVector,
    rv: &RemainderVector,
    mode: EnumerationMode,
    max_assignments: usize,
    visit: &mut dyn FnMut(&CandidateAssignment) -> bool,
) {
    let space = SearchSpace::new(user, rv, mode);
    let mut remaining = max_assignments;
    let mut cur = space.root();
    space.visit_from(&mut cur, &mut remaining, &mut |c| visit(&c.assignment()));
}

/// Read-only description of one enumeration problem: the user's
/// remainders against a request's remainder vector, plus the mode limits.
/// All walks over the space — from the root or from a mid-depth prefix —
/// produce assignments in the same canonical order (see the module docs).
pub(crate) struct SearchSpace<'a> {
    user_rems: Vec<u64>,
    nec_rems: &'a [u64],
    opt_rems: &'a [u64],
    /// Strict mode: unknown allowed only where H_k(r) = ∅ globally.
    subset_empty: Vec<bool>,
    mode: EnumerationMode,
    gamma: usize,
    mk: usize,
}

/// One partial assignment: the first `filled()` positions of the search
/// space are decided. Cloneable so a shallow prefix can be handed to a
/// worker thread, which resumes the walk exactly where the prefix stops.
#[derive(Debug, Clone)]
pub(crate) struct Cursor {
    used: Vec<bool>,
    necessary: Vec<usize>,
    optional: Vec<Option<usize>>,
    /// Scan start for the next position (order consistency, Eq. 8).
    start: usize,
    unknowns: usize,
}

impl Cursor {
    fn filled(&self) -> usize {
        self.necessary.len() + self.optional.len()
    }

    /// Snapshot of the cursor as a completed/partial assignment.
    pub(crate) fn assignment(&self) -> CandidateAssignment {
        CandidateAssignment { necessary: self.necessary.clone(), optional: self.optional.clone() }
    }
}

impl<'a> SearchSpace<'a> {
    pub(crate) fn new(
        user: &ProfileVector,
        rv: &'a RemainderVector,
        mode: EnumerationMode,
    ) -> Self {
        let user_rems: Vec<u64> = user.remainders(rv.p());
        let subset_empty: Vec<bool> =
            rv.optional().iter().map(|&r| !user_rems.contains(&r)).collect();
        let mk = user_rems.len();
        SearchSpace {
            user_rems,
            nec_rems: rv.necessary(),
            opt_rems: rv.optional(),
            subset_empty,
            mode,
            gamma: rv.gamma(),
            mk,
        }
    }

    /// Total number of positions (α + β + γ); every completed assignment
    /// decides exactly this many.
    pub(crate) fn depth(&self) -> usize {
        self.nec_rems.len() + self.opt_rems.len()
    }

    /// The empty prefix.
    pub(crate) fn root(&self) -> Cursor {
        Cursor {
            used: vec![false; self.mk],
            necessary: Vec::with_capacity(self.nec_rems.len()),
            optional: Vec::with_capacity(self.opt_rems.len()),
            start: 0,
            unknowns: 0,
        }
    }

    /// Applies every legal move at the cursor's next position in canonical
    /// order — ascending user-attribute index, then (optional positions
    /// only) the unknown branch — invoking `f` on each extended cursor and
    /// undoing the move afterwards. Returns `false` as soon as `f` does.
    fn for_each_child(&self, cur: &mut Cursor, f: &mut dyn FnMut(&mut Cursor) -> bool) -> bool {
        let pos = cur.filled();
        debug_assert!(pos < self.depth());
        let scan_start = cur.start;
        let alpha = self.nec_rems.len();
        if pos < alpha {
            let want = self.nec_rems[pos];
            for x in scan_start..self.mk {
                if cur.used[x] || self.user_rems[x] != want {
                    continue;
                }
                cur.used[x] = true;
                cur.necessary.push(x);
                // The optional block restarts its index scan (Eq. 8 holds
                // per sorted block).
                cur.start = if pos + 1 == alpha { 0 } else { x + 1 };
                let go_on = f(cur);
                cur.necessary.pop();
                cur.used[x] = false;
                cur.start = scan_start;
                if !go_on {
                    return false;
                }
            }
        } else {
            let opos = pos - alpha;
            let want = self.opt_rems[opos];
            for x in scan_start..self.mk {
                if cur.used[x] || self.user_rems[x] != want {
                    continue;
                }
                cur.used[x] = true;
                cur.optional.push(Some(x));
                cur.start = x + 1;
                let go_on = f(cur);
                cur.optional.pop();
                cur.used[x] = false;
                cur.start = scan_start;
                if !go_on {
                    return false;
                }
            }
            let unknown_allowed = cur.unknowns < self.gamma
                && match self.mode {
                    EnumerationMode::Exhaustive => true,
                    EnumerationMode::Strict => self.subset_empty[opos],
                };
            if unknown_allowed {
                cur.optional.push(None);
                cur.unknowns += 1;
                // An unknown position does not consume an index: the next
                // position scans from the same start.
                let go_on = f(cur);
                cur.unknowns -= 1;
                cur.optional.pop();
                if !go_on {
                    return false;
                }
            }
        }
        true
    }

    /// Depth-first visit of every completed assignment reachable from
    /// `cur`, in canonical order. Each visit decrements `remaining`;
    /// returns `false` once the budget is exhausted or the visitor aborts.
    /// (Matching the historical cap semantics, the assignment that
    /// exhausts the budget is still visited.)
    pub(crate) fn visit_from(
        &self,
        cur: &mut Cursor,
        remaining: &mut usize,
        visit: &mut dyn FnMut(&Cursor) -> bool,
    ) -> bool {
        if cur.filled() == self.depth() {
            *remaining = remaining.saturating_sub(1);
            return visit(cur) && *remaining > 0;
        }
        self.for_each_child(cur, &mut |c| self.visit_from(c, remaining, visit))
    }

    /// Collects, in canonical order, every cursor with exactly the first
    /// `depth` positions decided. Returns `None` when more than `limit`
    /// prefixes exist (the caller falls back to a shallower depth).
    ///
    /// The set is *complete*: the subtrees below the returned prefixes
    /// partition all assignments of the space.
    pub(crate) fn prefixes_at_depth(&self, depth: usize, limit: usize) -> Option<Vec<Cursor>> {
        debug_assert!(depth <= self.depth());
        let mut out = Vec::new();
        let mut cur = self.root();
        if self.collect_prefixes(&mut cur, depth, limit, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    fn collect_prefixes(
        &self,
        cur: &mut Cursor,
        depth: usize,
        limit: usize,
        out: &mut Vec<Cursor>,
    ) -> bool {
        if cur.filled() == depth {
            if out.len() >= limit {
                return false;
            }
            out.push(cur.clone());
            return true;
        }
        self.for_each_child(cur, &mut |c| self.collect_prefixes(c, depth, limit, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::hint::{HintConstruction, HintMatrix};
    use crate::profile::Profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(i: usize) -> Attribute {
        Attribute::new("interest", format!("topic-{i}"))
    }

    fn sorted_hashes(attrs: &[Attribute]) -> Vec<AttributeHash> {
        let mut hs: Vec<AttributeHash> = attrs.iter().map(Attribute::hash).collect();
        hs.sort_unstable();
        hs
    }

    struct Fixture {
        rv: RemainderVector,
        hint: Option<HintMatrix>,
        key: ProfileKey,
    }

    /// Builds a request over attrs[0..alpha] necessary and
    /// attrs[alpha..alpha+opt] optional.
    fn fixture(alpha: usize, opt: usize, beta: usize, p: u64) -> (Vec<Attribute>, Fixture) {
        let attrs: Vec<Attribute> = (0..alpha + opt).map(attr).collect();
        let nec = sorted_hashes(&attrs[..alpha]);
        let optional = sorted_hashes(&attrs[alpha..]);
        let rv = RemainderVector::new(p, &nec, &optional, beta);
        let gamma = opt - beta;
        let hint = if gamma > 0 {
            Some(HintMatrix::generate(
                &optional,
                beta,
                HintConstruction::Cauchy,
                &mut StdRng::seed_from_u64(1),
            ))
        } else {
            None
        };
        let mut full = nec.clone();
        full.extend(optional);
        let key = ProfileKey::from_hashes(&full);
        (attrs, Fixture { rv, hint, key })
    }

    fn keys_for(profile: &Profile, fx: &Fixture, mode: EnumerationMode) -> Vec<CandidateKey> {
        let config = MatchConfig { mode, max_assignments: 10_000 };
        enumerate_candidate_keys(profile.vector(), &fx.rv, fx.hint.as_ref(), &config)
    }

    #[test]
    fn perfect_match_exact_request() {
        let (attrs, fx) = fixture(3, 0, 0, 11);
        let user = Profile::from_attributes(attrs);
        let keys = keys_for(&user, &fx, EnumerationMode::Strict);
        assert!(keys.iter().any(|k| k.key == fx.key));
    }

    #[test]
    fn fuzzy_match_with_missing_optional() {
        let (attrs, fx) = fixture(1, 4, 2, 11); // gamma = 2

        // User owns the necessary one + 2 of 4 optional + noise.
        let user = Profile::from_attributes(vec![
            attrs[0].clone(),
            attrs[1].clone(),
            attrs[2].clone(),
            Attribute::new("noise", "z"),
        ]);
        for mode in [EnumerationMode::Strict, EnumerationMode::Exhaustive] {
            let keys = keys_for(&user, &fx, mode);
            assert!(keys.iter().any(|k| k.key == fx.key), "true key missing in {mode:?}");
        }
    }

    #[test]
    fn below_threshold_user_never_gets_true_key() {
        let (attrs, fx) = fixture(1, 4, 3, 97); // needs 3 of 4 optional
                                                // Owns necessary + only 1 optional.
        let user = Profile::from_attributes(vec![attrs[0].clone(), attrs[1].clone()]);
        for mode in [EnumerationMode::Strict, EnumerationMode::Exhaustive] {
            let keys = keys_for(&user, &fx, mode);
            assert!(
                keys.iter().all(|k| k.key != fx.key),
                "below-threshold user must not recover the key in {mode:?}"
            );
        }
    }

    #[test]
    fn missing_necessary_blocks_match() {
        let (attrs, fx) = fixture(2, 3, 3, 97);
        // Owns all optional but only one of two necessary.
        let mut owned = attrs[2..].to_vec();
        owned.push(attrs[0].clone());
        let user = Profile::from_attributes(owned);
        let keys = keys_for(&user, &fx, EnumerationMode::Exhaustive);
        assert!(keys.iter().all(|k| k.key != fx.key));
    }

    #[test]
    fn unmatched_user_fast_check_consistency() {
        // fast_check true whenever enumeration finds >= 1 assignment.
        let (attrs, fx) = fixture(1, 3, 2, 11);
        for extra in 0..20 {
            let user = Profile::from_attributes(vec![
                Attribute::new("noise", format!("n{extra}")),
                attrs[0].clone(),
            ]);
            let assignments = enumerate_assignments(
                user.vector(),
                &fx.rv,
                &MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 1000 },
            );
            assert_eq!(fx.rv.fast_check(user.vector()), !assignments.is_empty());
        }
    }

    #[test]
    fn exhaustive_fixes_collision_false_negative() {
        // Construct a user who truly satisfies the request but owns an
        // extra attribute whose remainder collides with an unowned
        // optional position. Strict mode can miss the true key; the
        // exhaustive mode must always find it.
        let p = 3u64; // tiny modulus makes collisions easy to find
        let (attrs, fx) = fixture(0, 4, 2, p); // gamma = 2

        // Owns optional[0], optional[1] (by hash order of the fixture's
        // optional block) plus colliding noise attributes.
        let optional = sorted_hashes(&attrs);
        let owned: Vec<Attribute> = attrs
            .iter()
            .filter(|a| {
                let h = a.hash();
                h == optional[0] || h == optional[1]
            })
            .cloned()
            .collect();
        let mut user_attrs = owned;
        for i in 0..30 {
            user_attrs.push(Attribute::new("noise", format!("c{i}")));
        }
        let user = Profile::from_attributes(user_attrs);
        let keys = keys_for(&user, &fx, EnumerationMode::Exhaustive);
        assert!(
            keys.iter().any(|k| k.key == fx.key),
            "exhaustive mode must never miss a true match"
        );
    }

    #[test]
    fn duplicate_keys_are_deduplicated() {
        let (attrs, fx) = fixture(0, 4, 2, 11); // gamma = 2
        let user = Profile::from_attributes(attrs); // owns everything
        let (keys, stats) = enumerate_candidate_keys_with_stats(
            user.vector(),
            &fx.rv,
            fx.hint.as_ref(),
            &MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 10_000 },
        );
        // Many assignments (choosing which owned positions to "forget")
        // but they all recover the same vector.
        assert!(stats.assignments > 1);
        let matching: Vec<_> = keys.iter().filter(|k| k.key == fx.key).collect();
        assert_eq!(matching.len(), 1);
    }

    #[test]
    fn cap_truncates_enumeration() {
        let (attrs, fx) = fixture(0, 6, 3, 2); // p=2: collisions everywhere
        let mut user_attrs = attrs;
        for i in 0..10 {
            user_attrs.push(Attribute::new("noise", format!("x{i}")));
        }
        let user = Profile::from_attributes(user_attrs);
        let (_, stats) = enumerate_candidate_keys_with_stats(
            user.vector(),
            &fx.rv,
            fx.hint.as_ref(),
            &MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 16 },
        );
        assert!(stats.truncated);
        assert_eq!(stats.assignments, 16);
    }

    #[test]
    fn order_consistency_is_enforced() {
        // Assignments must use strictly increasing user indices per block.
        let (attrs, fx) = fixture(0, 3, 3, 11);
        let user = Profile::from_attributes(attrs);
        let assignments = enumerate_assignments(
            user.vector(),
            &fx.rv,
            &MatchConfig { mode: EnumerationMode::Strict, max_assignments: 1000 },
        );
        for a in &assignments {
            let known: Vec<usize> = a.optional.iter().flatten().copied().collect();
            assert!(known.windows(2).all(|w| w[0] < w[1]), "{known:?}");
        }
    }

    #[test]
    fn no_attribute_reuse_across_blocks() {
        let (attrs, fx) = fixture(2, 2, 1, 2); // p=2 forces collisions
        let mut user_attrs = attrs;
        user_attrs.push(Attribute::new("noise", "q"));
        let user = Profile::from_attributes(user_attrs);
        let assignments = enumerate_assignments(
            user.vector(),
            &fx.rv,
            &MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 10_000 },
        );
        for a in &assignments {
            let used = a.used_indices();
            let mut dedup = used.clone();
            dedup.dedup();
            assert_eq!(used, dedup, "attribute used twice: {a:?}");
        }
    }

    #[test]
    fn stats_count_solves() {
        let (attrs, fx) = fixture(1, 3, 2, 11);
        let user = Profile::from_attributes(attrs);
        let (_, stats) = enumerate_candidate_keys_with_stats(
            user.vector(),
            &fx.rv,
            fx.hint.as_ref(),
            &MatchConfig::default(),
        );
        assert!(stats.solves >= 1);
        assert_eq!(stats.solves, stats.assignments); // hint present for all
    }

    #[test]
    fn empty_user_profile_not_candidate() {
        let (_, fx) = fixture(1, 3, 2, 11);
        let user = Profile::new();
        assert!(!fx.rv.fast_check(user.vector()));
        assert!(keys_for(&user, &fx, EnumerationMode::Exhaustive).is_empty());
    }
}
