//! The hint matrix (paper §III-C-2, Eqs. 9–13).
//!
//! For a fuzzy request with γ tolerated misses among β + γ optional
//! attributes, the initiator publishes `M = [C, B]` where
//! `C = [I_γ | R_{γ×β}]` and `B = C · h_opt`. A candidate who knows at
//! least β of the optional attribute hashes solves the restricted linear
//! system for the ≤ γ unknowns and recovers the *exact* missing hashes,
//! hence the full request vector and the profile key.
//!
//! ## Field choice and the uniqueness claim
//!
//! The paper uses "random nonzero integers" for `R` and asserts unique
//! solvability. We work over the Goldilocks-448 prime field (every SHA-256
//! output is a canonical element) and default to a **Cauchy** block for
//! `R`: every square submatrix of a Cauchy matrix is nonsingular, so the
//! restricted system is provably uniquely solvable for *every* pattern of
//! up to γ unknowns — the paper's claim, made unconditional. A
//! uniformly-random construction is retained for ablations.
//!
//! Because the Cauchy block is a public deterministic function of (γ, β),
//! it need not be transmitted: the wire format is just `B` (γ elements),
//! *smaller* than the paper's `32γ(γ+β) + 256γ`-bit estimate.

use crate::attribute::AttributeHash;
use msb_bignum::linalg::{cauchy_matrix, Matrix, SolveError};
use msb_bignum::{BigUint, PrimeField};
use rand::Rng;

/// How the random block `R` of `C = [I | R]` is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HintConstruction {
    /// Deterministic Cauchy block: unconditionally solvable, not
    /// transmitted. The default.
    #[default]
    Cauchy,
    /// Uniformly random nonzero field elements — the paper's literal
    /// construction; solvability holds with overwhelming probability.
    Random,
}

/// The hint matrix `M = [C, B]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintMatrix {
    gamma: usize,
    beta: usize,
    construction: HintConstruction,
    /// The full constraint matrix `C = [I | R]`, γ × (γ+β).
    c: Matrix,
    /// `B = C · h_opt`, γ field elements.
    b: Vec<BigUint>,
}

impl HintMatrix {
    /// Builds the hint matrix from the *sorted optional block* of the
    /// request vector (length β + γ).
    ///
    /// # Panics
    ///
    /// Panics if `beta > optional.len()` or `optional.is_empty()`, or if
    /// γ = 0 (a perfect-match request needs no hint matrix — the caller
    /// should skip construction, as the paper does).
    pub fn generate<R: Rng + ?Sized>(
        optional: &[AttributeHash],
        beta: usize,
        construction: HintConstruction,
        rng: &mut R,
    ) -> Self {
        assert!(!optional.is_empty(), "optional block must be nonempty");
        assert!(beta <= optional.len(), "beta exceeds optional count");
        let gamma = optional.len() - beta;
        assert!(gamma > 0, "perfect-match requests need no hint matrix");
        let field = PrimeField::goldilocks448();
        let r_block = match construction {
            HintConstruction::Cauchy => cauchy_matrix(&field, gamma, beta),
            HintConstruction::Random => {
                let mut m = Matrix::zeros(gamma, beta);
                for i in 0..gamma {
                    for j in 0..beta {
                        *m.at_mut(i, j) = field.random_nonzero(rng);
                    }
                }
                m
            }
        };
        let c = Matrix::identity(gamma).hconcat(&r_block);
        let h_opt: Vec<BigUint> = optional.iter().map(|h| h.to_biguint()).collect();
        let b = c.mul_vec(&field, &h_opt);
        HintMatrix { gamma, beta, construction, c, b }
    }

    /// Reassembles a hint matrix from wire parts.
    ///
    /// For [`HintConstruction::Cauchy`] the `r_block` must be `None` (it
    /// is reconstructed deterministically); for
    /// [`HintConstruction::Random`] it must be the transmitted γ×β block.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or a missing/superfluous `r_block`.
    pub fn from_parts(
        beta: usize,
        construction: HintConstruction,
        r_block: Option<Matrix>,
        b: Vec<BigUint>,
    ) -> Self {
        let gamma = b.len();
        assert!(gamma > 0, "hint matrix requires gamma > 0");
        let field = PrimeField::goldilocks448();
        let r = match construction {
            HintConstruction::Cauchy => {
                assert!(r_block.is_none(), "Cauchy block is never transmitted");
                cauchy_matrix(&field, gamma, beta)
            }
            HintConstruction::Random => {
                let r = r_block.expect("random construction requires the R block");
                assert_eq!(r.rows(), gamma, "R row count mismatch");
                assert_eq!(r.cols(), beta, "R column count mismatch");
                r
            }
        };
        let c = Matrix::identity(gamma).hconcat(&r);
        HintMatrix { gamma, beta, construction, c, b }
    }

    /// Number of tolerated unknowns γ.
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Number of required known optional attributes β.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// The construction used for the `R` block.
    pub fn construction(&self) -> HintConstruction {
        self.construction
    }

    /// The published vector `B`.
    pub fn b(&self) -> &[BigUint] {
        &self.b
    }

    /// The constraint matrix `C` (public; reconstructible from (γ, β) for
    /// the Cauchy construction).
    pub fn constraint_matrix(&self) -> &Matrix {
        &self.c
    }

    /// Completes a partial optional-block assignment.
    ///
    /// `assignment[j]` is `Some(h)` when the candidate matched position
    /// `j` with one of their own attribute hashes, `None` when unknown.
    /// Returns the fully recovered optional block, or `None` when:
    ///
    /// * more than γ positions are unknown,
    /// * the restricted system is inconsistent (proves a wrong candidate
    ///   before any decryption is attempted),
    /// * a solved value does not fit in 256 bits (same implication).
    ///
    /// A fully-known assignment is *verified* against `B` instead of
    /// solved, which rejects collision-induced wrong assignments early.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != gamma + beta`.
    pub fn solve(&self, assignment: &[Option<AttributeHash>]) -> Option<Vec<AttributeHash>> {
        let n = self.gamma + self.beta;
        assert_eq!(assignment.len(), n, "assignment length mismatch");
        let field = PrimeField::goldilocks448();

        let unknowns: Vec<usize> = (0..n).filter(|&j| assignment[j].is_none()).collect();
        if unknowns.len() > self.gamma {
            return None;
        }

        // rhs = B - C_K · x_K
        let mut rhs = self.b.clone();
        for (j, slot) in assignment.iter().enumerate() {
            if let Some(h) = slot {
                let hv = field.element(h.to_biguint());
                for (i, r) in rhs.iter_mut().enumerate() {
                    let delta = field.mul(self.c.at(i, j), &hv);
                    *r = field.sub(r, &delta);
                }
            }
        }

        if unknowns.is_empty() {
            // Fully known: consistency check doubles as verification.
            if rhs.iter().all(BigUint::is_zero) {
                return Some(assignment.iter().map(|s| s.expect("all known")).collect());
            }
            return None;
        }

        let c_u = self.c.select_columns(&unknowns);
        let solved = match c_u.solve(&field, &rhs) {
            Ok(x) => x,
            Err(SolveError::Inconsistent) | Err(SolveError::Underdetermined) => return None,
        };

        let mut full: Vec<AttributeHash> = Vec::with_capacity(n);
        let mut it = solved.iter();
        for slot in assignment {
            match slot {
                Some(h) => full.push(*h),
                None => {
                    let v = it.next().expect("one solution per unknown");
                    full.push(AttributeHash::from_biguint(v)?);
                }
            }
        }
        Some(full)
    }

    /// Serialized size in bits of what actually crosses the wire: `B`
    /// (γ × 448 bits) plus the `R` block for the random construction
    /// (γ·β × 448 bits); the Cauchy block is reconstructed locally.
    pub fn wire_size_bits(&self) -> usize {
        let b_bits = self.gamma * 448;
        match self.construction {
            HintConstruction::Cauchy => b_bits + 16, // (γ, β) as u8 each
            HintConstruction::Random => b_bits + self.gamma * self.beta * 448 + 16,
        }
    }

    /// The paper's accounting of the hint-matrix size
    /// (`32γ(γ+β) + 256γ` bits), reported for Table III comparability.
    pub fn paper_size_bits(&self) -> usize {
        32 * self.gamma * (self.gamma + self.beta) + 256 * self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hashes(n: usize) -> Vec<AttributeHash> {
        let mut hs: Vec<AttributeHash> =
            (0..n).map(|i| Attribute::new("interest", format!("topic-{i}")).hash()).collect();
        hs.sort_unstable();
        hs
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn recovers_single_unknown() {
        let opt = hashes(4); // beta=3, gamma=1
        let hint = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng());
        for missing in 0..4 {
            let mut assignment: Vec<Option<AttributeHash>> =
                opt.iter().copied().map(Some).collect();
            assignment[missing] = None;
            let full = hint.solve(&assignment).expect("solvable");
            assert_eq!(full, opt, "missing position {missing}");
        }
    }

    #[test]
    fn recovers_every_unknown_pattern_up_to_gamma() {
        let opt = hashes(6); // beta=3, gamma=3
        for construction in [HintConstruction::Cauchy, HintConstruction::Random] {
            let hint = HintMatrix::generate(&opt, 3, construction, &mut rng());
            for mask in 0u32..(1 << 6) {
                let unknown_count = mask.count_ones() as usize;
                if unknown_count > 3 {
                    continue;
                }
                let assignment: Vec<Option<AttributeHash>> =
                    (0..6).map(|j| if mask >> j & 1 == 1 { None } else { Some(opt[j]) }).collect();
                let full = hint
                    .solve(&assignment)
                    .unwrap_or_else(|| panic!("{construction:?} mask {mask:06b}"));
                assert_eq!(full, opt);
            }
        }
    }

    #[test]
    fn too_many_unknowns_rejected() {
        let opt = hashes(4);
        let hint = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng());
        let assignment = vec![None, None, Some(opt[2]), Some(opt[3])];
        assert_eq!(hint.solve(&assignment), None);
    }

    #[test]
    fn wrong_known_value_detected_when_fully_assigned() {
        let opt = hashes(4);
        let hint = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng());
        let wrong = Attribute::new("interest", "imposter").hash();
        let mut assignment: Vec<Option<AttributeHash>> = opt.iter().copied().map(Some).collect();
        assignment[1] = Some(wrong);
        assert_eq!(hint.solve(&assignment), None, "verification must fail");
    }

    #[test]
    fn wrong_known_value_with_unknowns_yields_wrong_hash_or_none() {
        let opt = hashes(6); // beta=3, gamma=3
        let hint = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng());
        let wrong = Attribute::new("interest", "imposter").hash();
        let mut assignment: Vec<Option<AttributeHash>> = opt.iter().copied().map(Some).collect();
        assignment[0] = Some(wrong);
        assignment[5] = None;
        match hint.solve(&assignment) {
            None => {} // solved value exceeded 256 bits — fine
            Some(full) => assert_ne!(full, opt, "must not silently recover the truth"),
        }
    }

    #[test]
    fn overdetermined_consistency_rejects_wrong_candidates() {
        // gamma=2 but only one unknown: the extra equation must act as a
        // verifier for the known values.
        let opt = hashes(5); // beta=3, gamma=2
        let hint = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng());
        let wrong = Attribute::new("interest", "imposter").hash();
        let mut assignment: Vec<Option<AttributeHash>> = opt.iter().copied().map(Some).collect();
        assignment[2] = None; // one unknown, two equations
        assignment[3] = Some(wrong);
        assert_eq!(hint.solve(&assignment), None);
    }

    #[test]
    fn cauchy_needs_no_r_on_the_wire() {
        let opt = hashes(6);
        let cauchy = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng());
        let random = HintMatrix::generate(&opt, 3, HintConstruction::Random, &mut rng());
        assert!(cauchy.wire_size_bits() < random.wire_size_bits());
        assert_eq!(cauchy.paper_size_bits(), 32 * 3 * 6 + 256 * 3);
    }

    #[test]
    fn deterministic_cauchy_reconstructible() {
        // Two independently generated Cauchy hints over the same optional
        // block are identical — the receiver can rebuild C from (γ, β).
        let opt = hashes(5);
        let h1 = HintMatrix::generate(&opt, 2, HintConstruction::Cauchy, &mut rng());
        let h2 =
            HintMatrix::generate(&opt, 2, HintConstruction::Cauchy, &mut StdRng::seed_from_u64(7));
        assert_eq!(h1, h2);
    }

    #[test]
    #[should_panic(expected = "perfect-match")]
    fn gamma_zero_panics() {
        let opt = hashes(3);
        let _ = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng());
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn wrong_assignment_length_panics() {
        let opt = hashes(4);
        let hint = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng());
        let _ = hint.solve(&[None]);
    }
}
