//! Profile normalization (paper §III-B).
//!
//! A cryptographic hash is the attribute-equivalence criterion, so two
//! spellings a human would consider equal must normalize to the same byte
//! string before hashing. The paper lists the pipeline: remove whitespace,
//! punctuation, accent marks and diacritics; lowercase; convert numbers to
//! words; canonicalize text; expand abbreviations; singularize plurals.
//! Semantic equivalence between different words is explicitly out of scope.
//!
//! Stages run in this order (each is individually testable):
//!
//! 1. lowercase + Unicode accent folding,
//! 2. token split on whitespace/punctuation,
//! 3. abbreviation expansion (built-in table, extensible),
//! 4. integer-to-English-words conversion,
//! 5. plural-to-singular reduction,
//! 6. concatenation with all separators removed.

use std::collections::BTreeMap;

/// Built-in abbreviation table. Keys must already be lowercase.
const ABBREVIATIONS: [(&str, &str); 16] = [
    ("cs", "computer science"),
    ("ai", "artificial intelligence"),
    ("ml", "machine learning"),
    ("prof", "professor"),
    ("dept", "department"),
    ("univ", "university"),
    ("eng", "engineering"),
    ("mgr", "manager"),
    ("dev", "developer"),
    ("sw", "software"),
    ("hw", "hardware"),
    ("bball", "basketball"),
    ("mgmt", "management"),
    ("intl", "international"),
    ("natl", "national"),
    ("assn", "association"),
];

/// Irregular plural forms the suffix rules cannot reach.
const IRREGULAR_PLURALS: [(&str, &str); 8] = [
    ("children", "child"),
    ("people", "person"),
    ("men", "man"),
    ("women", "woman"),
    ("feet", "foot"),
    ("teeth", "tooth"),
    ("mice", "mouse"),
    ("geese", "goose"),
];

/// Configurable normalizer. [`Normalizer::default`] uses the built-in
/// abbreviation table; deployments can extend it so both sides of a match
/// agree on the mapping.
///
/// # Example
///
/// ```
/// use msb_profile::normalize::Normalizer;
///
/// let n = Normalizer::default();
/// assert_eq!(n.normalize("Computer  Games"), n.normalize("computergame"));
/// assert_eq!(n.normalize("Café"), "cafe");
/// assert_eq!(n.normalize("42 dogs"), "fortytwodog");
/// ```
#[derive(Debug, Clone)]
pub struct Normalizer {
    abbreviations: BTreeMap<String, String>,
}

impl Default for Normalizer {
    fn default() -> Self {
        let abbreviations =
            ABBREVIATIONS.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        Normalizer { abbreviations }
    }
}

impl Normalizer {
    /// A normalizer with no abbreviation table (pure textual pipeline).
    pub fn bare() -> Self {
        Normalizer { abbreviations: BTreeMap::new() }
    }

    /// Adds or overrides an abbreviation. `short` is lowercased.
    pub fn with_abbreviation(mut self, short: &str, long: &str) -> Self {
        self.abbreviations.insert(short.to_lowercase(), long.to_lowercase());
        self
    }

    /// Runs the full pipeline and returns the canonical byte string.
    pub fn normalize(&self, input: &str) -> String {
        let folded = fold_accents(&input.to_lowercase());
        let tokens = tokenize(&folded);
        let mut out = String::with_capacity(input.len());
        for token in tokens {
            let expanded = match self.abbreviations.get(&token) {
                Some(long) => long.clone(),
                None => token,
            };
            // Expansion may itself contain several words.
            for word in expanded.split_whitespace() {
                let word = if let Ok(n) = word.parse::<u64>() {
                    number_to_words(n)
                } else {
                    singularize(word)
                };
                out.push_str(&word);
            }
        }
        out
    }
}

/// Splits on anything that is not alphanumeric.
fn tokenize(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_string())
        .collect()
}

/// Folds Latin accents and diacritics onto their ASCII base letters.
/// Characters outside the mapping pass through unchanged (CJK attributes,
/// e.g. Tencent Weibo tags, are preserved verbatim).
fn fold_accents(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' | 'ą' => 'a',
            'ç' | 'ć' | 'č' => 'c',
            'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' => 'e',
            'ì' | 'í' | 'î' | 'ï' | 'ĩ' | 'ī' | 'ĭ' | 'į' => 'i',
            'ñ' | 'ń' | 'ň' => 'n',
            'ŕ' | 'ř' => 'r',
            'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ō' | 'ŏ' | 'ő' => 'o',
            'ù' | 'ú' | 'û' | 'ü' | 'ũ' | 'ū' | 'ŭ' | 'ů' => 'u',
            'ý' | 'ÿ' => 'y',
            'š' | 'ś' => 's',
            'ž' | 'ź' | 'ż' => 'z',
            'ß' => 's', // folded, not expanded, to stay 1:1
            other => other,
        })
        .collect()
}

/// Converts an integer to concatenation-ready English words
/// (no spaces or hyphens): `42` → `fortytwo`.
pub fn number_to_words(n: u64) -> String {
    const ONES: [&str; 20] = [
        "zero",
        "one",
        "two",
        "three",
        "four",
        "five",
        "six",
        "seven",
        "eight",
        "nine",
        "ten",
        "eleven",
        "twelve",
        "thirteen",
        "fourteen",
        "fifteen",
        "sixteen",
        "seventeen",
        "eighteen",
        "nineteen",
    ];
    const TENS: [&str; 10] =
        ["", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy", "eighty", "ninety"];
    const SCALES: [(u64, &str); 5] = [
        (1_000_000_000_000, "trillion"),
        (1_000_000_000, "billion"),
        (1_000_000, "million"),
        (1_000, "thousand"),
        (100, "hundred"),
    ];

    if n < 20 {
        return ONES[n as usize].to_string();
    }
    if n < 100 {
        let mut s = TENS[(n / 10) as usize].to_string();
        if !n.is_multiple_of(10) {
            s.push_str(ONES[(n % 10) as usize]);
        }
        return s;
    }
    for (scale, name) in SCALES {
        if n >= scale {
            let mut s = number_to_words(n / scale);
            s.push_str(name);
            if !n.is_multiple_of(scale) {
                s.push_str(&number_to_words(n % scale));
            }
            return s;
        }
    }
    unreachable!("all u64 values are covered by the scales above")
}

/// Naive English singularization. Handles irregulars, `-ies`, `-ves`,
/// `-xes`/`-ches`/`-shes`/`-sses`, and the trailing `-s` default. Words
/// that look singular already (`-ss`, `-us`, `-is`) are left alone.
pub fn singularize(word: &str) -> String {
    for (plural, singular) in IRREGULAR_PLURALS {
        if word == plural {
            return singular.to_string();
        }
    }
    let n = word.len();
    if n > 3 && word.ends_with("ies") {
        return format!("{}y", &word[..n - 3]);
    }
    if n > 3 && (word.ends_with("ves")) {
        // knives -> knife is ambiguous with -ve words; use the common rule.
        return format!("{}f", &word[..n - 3]);
    }
    if n > 4
        && (word.ends_with("xes")
            || word.ends_with("sses")
            || word.ends_with("ches")
            || word.ends_with("shes"))
    {
        return word[..n - 2].to_string();
    }
    if n > 3 && word.ends_with("oes") {
        return word[..n - 2].to_string();
    }
    if n > 2
        && word.ends_with('s')
        && !word.ends_with("ss")
        && !word.ends_with("us")
        && !word.ends_with("is")
    {
        return word[..n - 1].to_string();
    }
    word.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(s: &str) -> String {
        Normalizer::default().normalize(s)
    }

    #[test]
    fn lowercase_and_whitespace() {
        assert_eq!(norm("Computer Science"), "computerscience");
        assert_eq!(norm("  computer   science  "), "computerscience");
    }

    #[test]
    fn punctuation_removed() {
        assert_eq!(norm("rock-n-roll!"), norm("rock n roll"));
        assert_eq!(norm("new_york.city"), "newyorkcity");
    }

    #[test]
    fn accents_folded() {
        assert_eq!(norm("Café"), "cafe");
        assert_eq!(norm("Beyoncé"), "beyonce");
        assert_eq!(norm("Dvořák"), "dvorak");
    }

    #[test]
    fn numbers_to_words() {
        assert_eq!(norm("7"), "seven");
        assert_eq!(norm("42"), "fortytwo");
        assert_eq!(norm("100"), "onehundred");
        assert_eq!(norm("1984"), "onethousandninehundredeightyfour");
        assert_eq!(norm("level 3 engineer"), norm("level three engineer"));
    }

    #[test]
    fn number_to_words_edge_values() {
        assert_eq!(number_to_words(0), "zero");
        assert_eq!(number_to_words(19), "nineteen");
        assert_eq!(number_to_words(20), "twenty");
        assert_eq!(number_to_words(21), "twentyone");
        assert_eq!(number_to_words(1_000_000), "onemillion");
        assert_eq!(number_to_words(1_000_001), "onemillionone");
    }

    #[test]
    fn plurals_singularized() {
        assert_eq!(norm("dogs"), "dog");
        assert_eq!(norm("parties"), "party");
        assert_eq!(norm("boxes"), "box");
        assert_eq!(norm("churches"), "church");
        assert_eq!(norm("glasses"), "glass");
        assert_eq!(norm("children"), "child");
        assert_eq!(norm("heroes"), "hero");
    }

    #[test]
    fn singular_forms_untouched() {
        assert_eq!(singularize("glass"), "glass");
        assert_eq!(singularize("bus"), "bus");
        assert_eq!(singularize("tennis"), "tennis");
        assert_eq!(singularize("go"), "go");
    }

    #[test]
    fn abbreviations_expanded() {
        assert_eq!(norm("CS"), "computerscience");
        assert_eq!(norm("Univ of Illinois"), norm("university of illinois"));
        // expansion runs through the rest of the pipeline
        assert_eq!(norm("prof"), "professor");
    }

    #[test]
    fn custom_abbreviation() {
        let n = Normalizer::default().with_abbreviation("iit", "illinois institute of technology");
        assert_eq!(n.normalize("IIT"), "illinoisinstituteoftechnology");
    }

    #[test]
    fn pipeline_idempotent() {
        // Normalizing a normalized string must be a fixed point for
        // strings without abbreviations (expansion is one-way by design).
        for s in ["computerscience", "basketball", "fortytwo", "cafe"] {
            assert_eq!(norm(s), s);
            assert_eq!(norm(&norm(s)), norm(s));
        }
    }

    #[test]
    fn paper_example_equivalences() {
        // The paper's motivating examples: spelling and typing variants
        // should collide; distinct words should not.
        assert_eq!(norm("Computer Game"), norm("computer games"));
        assert_ne!(norm("basketball"), norm("baseball"));
    }

    #[test]
    fn cjk_passthrough() {
        assert_eq!(norm("篮球"), "篮球");
    }

    #[test]
    fn bare_normalizer_skips_abbreviations() {
        // Two-letter words are never singularized, so "cs" passes through.
        assert_eq!(Normalizer::bare().normalize("CS"), "cs");
    }

    #[test]
    fn empty_input() {
        assert_eq!(norm(""), "");
        assert_eq!(norm("  ...  "), "");
    }
}
