//! The remainder vector and the candidate fast check
//! (paper §III-C-1, Eq. 4, Theorem 1).
//!
//! Every request carries, per attribute, the remainder of its 256-bit hash
//! modulo a small prime `p > m_t`. Theorem 1 — different remainders imply
//! different hashes — lets a relay discard a request after `m_k` modulo
//! operations and a cheap combinatorial check, with **no false
//! negatives**: a truly matching user always passes.

use crate::attribute::AttributeHash;
use crate::profile::ProfileVector;

/// The remainder vector of a request: the necessary block (all α required)
/// followed by the optional block (at least β of β + γ required).
///
/// Blocks are kept separate because the order-consistency rule (paper
/// Eq. 8) applies within each sorted block; the concatenated vector is not
/// globally sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemainderVector {
    p: u64,
    necessary: Vec<u64>,
    optional: Vec<u64>,
    beta: usize,
}

impl RemainderVector {
    /// Builds the remainder vector from the sorted request blocks.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2`, if `beta > optional.len()`, or if the request is
    /// empty.
    pub fn new(
        p: u64,
        necessary: &[AttributeHash],
        optional: &[AttributeHash],
        beta: usize,
    ) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        assert!(beta <= optional.len(), "beta exceeds optional count");
        assert!(
            !necessary.is_empty() || !optional.is_empty(),
            "request must contain at least one attribute"
        );
        RemainderVector {
            p,
            necessary: necessary.iter().map(|h| h.remainder(p)).collect(),
            optional: optional.iter().map(|h| h.remainder(p)).collect(),
            beta,
        }
    }

    /// Reassembles a remainder vector from raw wire values.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RemainderVector::new`], plus
    /// when any remainder is `>= p`.
    pub fn from_remainders(p: u64, necessary: Vec<u64>, optional: Vec<u64>, beta: usize) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        assert!(beta <= optional.len(), "beta exceeds optional count");
        assert!(
            !necessary.is_empty() || !optional.is_empty(),
            "request must contain at least one attribute"
        );
        assert!(necessary.iter().chain(optional.iter()).all(|&r| r < p), "remainder out of range");
        RemainderVector { p, necessary, optional, beta }
    }

    /// The small prime modulus `p`.
    pub fn p(&self) -> u64 {
        self.p
    }

    /// α — number of necessary attributes.
    pub fn alpha(&self) -> usize {
        self.necessary.len()
    }

    /// β — minimum optional attributes a match must own.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// γ — tolerated unknown optional attributes.
    pub fn gamma(&self) -> usize {
        self.optional.len() - self.beta
    }

    /// m_t — total request size.
    pub fn len(&self) -> usize {
        self.necessary.len() + self.optional.len()
    }

    /// Whether the vector is empty (never true for a validly built one).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The similarity threshold θ = (α + β) / m_t.
    pub fn theta(&self) -> f64 {
        (self.alpha() + self.beta) as f64 / self.len() as f64
    }

    /// Necessary-block remainders.
    pub fn necessary(&self) -> &[u64] {
        &self.necessary
    }

    /// Optional-block remainders.
    pub fn optional(&self) -> &[u64] {
        &self.optional
    }

    /// Wire size in bits under the paper's accounting (32 bits per entry).
    pub fn wire_size_bits(&self) -> usize {
        32 * self.len()
    }

    /// The fast check (paper §III-A "Fast Check"): does at least one
    /// structurally valid candidate assignment exist? Runs the same
    /// backtracking as full enumeration but stops at the first witness.
    ///
    /// Guaranteed free of false negatives (Theorem 1); false positives are
    /// the `1/p`-probability remainder collisions the candidate-key stage
    /// weeds out.
    pub fn fast_check(&self, user: &ProfileVector) -> bool {
        crate::matching::has_candidate_assignment(user, self)
    }
}

/// Theorem 1 as a standalone predicate: can `h` possibly equal a hash with
/// remainder `r` mod `p`? (Used in tests and in the paper's cost
/// accounting — one `Mod` plus one compare per entry.)
pub fn remainder_compatible(h: &AttributeHash, r: u64, p: u64) -> bool {
    h.remainder(p) == r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::profile::Profile;

    fn attr(c: &str, v: &str) -> Attribute {
        Attribute::new(c, v)
    }

    fn sorted_hashes(attrs: &[Attribute]) -> Vec<AttributeHash> {
        let mut hs: Vec<AttributeHash> = attrs.iter().map(Attribute::hash).collect();
        hs.sort_unstable();
        hs
    }

    #[test]
    fn theorem_1_no_false_negatives() {
        // If hashes are equal, remainders are equal — for many moduli.
        for i in 0..50 {
            let h = attr("t", &format!("v{i}")).hash();
            for p in [2u64, 3, 11, 23, 97] {
                assert!(remainder_compatible(&h, h.remainder(p), p));
            }
        }
    }

    #[test]
    fn counts_and_theta() {
        let nec = sorted_hashes(&[attr("a", "1"), attr("b", "2")]);
        let opt = sorted_hashes(&[attr("c", "3"), attr("d", "4"), attr("e", "5")]);
        let rv = RemainderVector::new(11, &nec, &opt, 2);
        assert_eq!(rv.alpha(), 2);
        assert_eq!(rv.beta(), 2);
        assert_eq!(rv.gamma(), 1);
        assert_eq!(rv.len(), 5);
        assert!((rv.theta() - 0.8).abs() < 1e-12);
        assert_eq!(rv.wire_size_bits(), 160);
    }

    #[test]
    fn remainders_below_p() {
        let opt = sorted_hashes(&(0..20).map(|i| attr("t", &i.to_string())).collect::<Vec<_>>());
        let rv = RemainderVector::new(23, &[], &opt, 20);
        assert!(rv.optional().iter().all(|&r| r < 23));
    }

    #[test]
    fn matching_user_always_passes_fast_check() {
        // Exhaustive spot-check of the no-false-negative guarantee.
        let attrs: Vec<Attribute> = (0..6).map(|i| attr("interest", &format!("x{i}"))).collect();
        let nec = sorted_hashes(&attrs[..2]);
        let opt = sorted_hashes(&attrs[2..]);
        for p in [3u64, 11, 23] {
            let rv = RemainderVector::new(p, &nec, &opt, 2); // beta=2, gamma=2

            // A user owning everything.
            let full = Profile::from_attributes(attrs.clone());
            assert!(rv.fast_check(full.vector()), "full owner, p={p}");
            // A user owning the necessary ones and exactly beta optional.
            let partial = Profile::from_attributes(vec![
                attrs[0].clone(),
                attrs[1].clone(),
                attrs[2].clone(),
                attrs[3].clone(),
            ]);
            assert!(rv.fast_check(partial.vector()), "β-owner, p={p}");
        }
    }

    #[test]
    fn missing_necessary_usually_fails_fast_check() {
        // A user without the necessary attribute fails unless a remainder
        // collision occurs; pick p large enough that these attrs don't
        // collide (verified below).
        let needed = attr("profession", "surgeon");
        let others: Vec<Attribute> = (0..5).map(|i| attr("interest", &format!("y{i}"))).collect();
        let nec = sorted_hashes(std::slice::from_ref(&needed));
        let opt = sorted_hashes(&others);
        let user = Profile::from_attributes(others.clone());
        let p = 97;
        let collide =
            user.vector().hashes().iter().any(|h| h.remainder(p) == needed.hash().remainder(p));
        let rv = RemainderVector::new(p, &nec, &opt, 3);
        if !collide {
            assert!(!rv.fast_check(user.vector()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_request_panics() {
        let _ = RemainderVector::new(11, &[], &[], 0);
    }

    #[test]
    #[should_panic(expected = "beta exceeds")]
    fn beta_too_large_panics() {
        let opt = sorted_hashes(&[attr("a", "1")]);
        let _ = RemainderVector::new(11, &[], &opt, 2);
    }
}
