//! Request profiles: the initiator's flexible search specification
//! (paper §II-A) and its sealed form.
//!
//! A request `A_t = (N_t, O_t)` has α necessary attributes — all required —
//! and β + γ optional attributes of which at least β must be owned. The
//! similarity threshold is θ = (α + β) / m_t; γ = 0 demands a perfect
//! match.

use crate::attribute::{Attribute, AttributeHash};
use crate::hint::{HintConstruction, HintMatrix};
use crate::profile::{Profile, ProfileKey};
use crate::remainder::RemainderVector;
use rand::Rng;
use std::collections::BTreeSet;

/// Errors building a request profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The request contains no attributes at all.
    Empty,
    /// β exceeds the number of optional attributes.
    BetaTooLarge {
        /// Requested β.
        beta: usize,
        /// Available optional attributes.
        optional: usize,
    },
    /// An attribute appears in both the necessary and optional sets.
    Overlap(Attribute),
    /// The remainder modulus must exceed the request size (paper: a prime
    /// `p > m_t`).
    ModulusTooSmall {
        /// Provided modulus.
        p: u64,
        /// Request size m_t.
        mt: usize,
    },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Empty => write!(f, "request has no attributes"),
            RequestError::BetaTooLarge { beta, optional } => {
                write!(f, "beta {beta} exceeds optional attribute count {optional}")
            }
            RequestError::Overlap(a) => {
                write!(f, "attribute {a} is both necessary and optional")
            }
            RequestError::ModulusTooSmall { p, mt } => {
                write!(f, "remainder modulus {p} must exceed request size {mt}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// The initiator's request: necessary and optional attribute sets plus the
/// minimum optional count β.
///
/// # Example
///
/// ```
/// use msb_profile::attribute::Attribute;
/// use msb_profile::request::RequestProfile;
///
/// let r = RequestProfile::new(
///     vec![Attribute::new("sex", "male")],
///     vec![Attribute::new("interest", "jazz"), Attribute::new("interest", "go")],
///     1,
/// )?;
/// assert_eq!(r.alpha(), 1);
/// assert_eq!(r.gamma(), 1);
/// assert!((r.theta() - 2.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), msb_profile::request::RequestError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestProfile {
    necessary: Vec<Attribute>,
    optional: Vec<Attribute>,
    beta: usize,
}

impl RequestProfile {
    /// Creates a fuzzy request. Duplicates within each set are removed; an
    /// attribute in both sets is an error.
    ///
    /// # Errors
    ///
    /// See [`RequestError`].
    pub fn new(
        necessary: Vec<Attribute>,
        optional: Vec<Attribute>,
        beta: usize,
    ) -> Result<Self, RequestError> {
        let necessary: Vec<Attribute> = dedup(necessary);
        let optional: Vec<Attribute> = dedup(optional);
        if necessary.is_empty() && optional.is_empty() {
            return Err(RequestError::Empty);
        }
        if beta > optional.len() {
            return Err(RequestError::BetaTooLarge { beta, optional: optional.len() });
        }
        let nec_hashes: BTreeSet<AttributeHash> = necessary.iter().map(Attribute::hash).collect();
        if let Some(dup) = optional.iter().find(|a| nec_hashes.contains(&a.hash())) {
            return Err(RequestError::Overlap(dup.clone()));
        }
        Ok(RequestProfile { necessary, optional, beta })
    }

    /// A perfect-match request: every attribute necessary, γ = 0.
    pub fn exact(attributes: Vec<Attribute>) -> Result<Self, RequestError> {
        Self::new(attributes, Vec::new(), 0)
    }

    /// A pure-threshold request (α = 0): at least `beta` of `attributes`.
    /// This is the paper's "cardinality exceeds threshold" mode (PPL2 with
    /// α = 0).
    pub fn threshold(attributes: Vec<Attribute>, beta: usize) -> Result<Self, RequestError> {
        Self::new(Vec::new(), attributes, beta)
    }

    /// α — necessary attribute count.
    pub fn alpha(&self) -> usize {
        self.necessary.len()
    }

    /// β — minimum optional matches.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// γ — tolerated optional misses.
    pub fn gamma(&self) -> usize {
        self.optional.len() - self.beta
    }

    /// m_t — total attribute count.
    pub fn len(&self) -> usize {
        self.necessary.len() + self.optional.len()
    }

    /// Whether the request is empty (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// θ = (α + β) / m_t.
    pub fn theta(&self) -> f64 {
        (self.alpha() + self.beta) as f64 / self.len() as f64
    }

    /// Necessary attributes.
    pub fn necessary(&self) -> &[Attribute] {
        &self.necessary
    }

    /// Optional attributes.
    pub fn optional(&self) -> &[Attribute] {
        &self.optional
    }

    /// Whether `profile` truly satisfies this request (ground truth, used
    /// by the evaluation and by tests — the protocols never see this).
    pub fn is_satisfied_by(&self, profile: &Profile) -> bool {
        self.necessary.iter().all(|a| profile.contains(a))
            && self.optional.iter().filter(|a| profile.contains(a)).count() >= self.beta
    }

    /// The hashed request vector (sorted blocks).
    pub fn vector(&self) -> RequestVector {
        RequestVector::from_request(self)
    }

    /// Convenience: vector + remainder vector + hint matrix + profile key
    /// in one call, using the default (Cauchy) hint construction.
    ///
    /// # Panics
    ///
    /// Panics if `p <= m_t` (the paper requires a prime `p > m_t`); use
    /// [`RequestProfile::try_seal`] for a fallible version.
    pub fn seal<R: Rng + ?Sized>(&self, p: u64, rng: &mut R) -> SealedRequest {
        self.try_seal(p, HintConstruction::Cauchy, rng).expect("modulus must exceed request size")
    }

    /// Fallible, construction-selectable version of
    /// [`RequestProfile::seal`].
    ///
    /// # Errors
    ///
    /// [`RequestError::ModulusTooSmall`] if `p <= m_t`.
    pub fn try_seal<R: Rng + ?Sized>(
        &self,
        p: u64,
        construction: HintConstruction,
        rng: &mut R,
    ) -> Result<SealedRequest, RequestError> {
        if p <= self.len() as u64 {
            return Err(RequestError::ModulusTooSmall { p, mt: self.len() });
        }
        let vector = self.vector();
        let remainder = vector.remainder_vector(p);
        let hint = vector.hint_matrix(construction, rng);
        let key = vector.profile_key();
        Ok(SealedRequest { vector, remainder, hint, key })
    }
}

fn dedup(attrs: Vec<Attribute>) -> Vec<Attribute> {
    let mut seen: BTreeSet<AttributeHash> = BTreeSet::new();
    attrs.into_iter().filter(|a| seen.insert(a.hash())).collect()
}

/// The hashed form of a request: sorted necessary block ‖ sorted optional
/// block. Order within each block is ascending hash order, the order the
/// order-consistency rule (Eq. 8) refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestVector {
    necessary: Vec<AttributeHash>,
    optional: Vec<AttributeHash>,
    beta: usize,
}

impl RequestVector {
    fn from_request(req: &RequestProfile) -> Self {
        // Batch-hash both blocks in one pass (equal-length canonical
        // forms compress four lanes at a time).
        let hashes = Attribute::hash_many(req.necessary.iter().chain(req.optional.iter()));
        let (mut necessary, mut optional) = {
            let (n, o) = hashes.split_at(req.necessary.len());
            (n.to_vec(), o.to_vec())
        };
        necessary.sort_unstable();
        optional.sort_unstable();
        RequestVector { necessary, optional, beta: req.beta }
    }

    /// Builds directly from hash blocks (used by the location-privacy
    /// layer, whose "attributes" are lattice points).
    pub fn from_hashes(
        mut necessary: Vec<AttributeHash>,
        mut optional: Vec<AttributeHash>,
        beta: usize,
    ) -> Self {
        necessary.sort_unstable();
        necessary.dedup();
        optional.sort_unstable();
        optional.dedup();
        assert!(beta <= optional.len(), "beta exceeds optional count");
        RequestVector { necessary, optional, beta }
    }

    /// The sorted necessary block.
    pub fn necessary(&self) -> &[AttributeHash] {
        &self.necessary
    }

    /// The sorted optional block.
    pub fn optional(&self) -> &[AttributeHash] {
        &self.optional
    }

    /// β.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// γ.
    pub fn gamma(&self) -> usize {
        self.optional.len() - self.beta
    }

    /// m_t.
    pub fn len(&self) -> usize {
        self.necessary.len() + self.optional.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The concatenated full vector (necessary ‖ optional).
    pub fn full(&self) -> Vec<AttributeHash> {
        let mut v = self.necessary.clone();
        v.extend_from_slice(&self.optional);
        v
    }

    /// The request profile key `K_t = H(H_t)` (Eq. 3). **Never transmitted.**
    pub fn profile_key(&self) -> ProfileKey {
        ProfileKey::from_hashes(&self.full())
    }

    /// The remainder vector for modulus `p` (Eq. 4).
    pub fn remainder_vector(&self, p: u64) -> RemainderVector {
        RemainderVector::new(p, &self.necessary, &self.optional, self.beta)
    }

    /// The hint matrix, or `None` for perfect-match requests (γ = 0).
    pub fn hint_matrix<R: Rng + ?Sized>(
        &self,
        construction: HintConstruction,
        rng: &mut R,
    ) -> Option<HintMatrix> {
        if self.gamma() == 0 {
            return None;
        }
        Some(HintMatrix::generate(&self.optional, self.beta, construction, rng))
    }
}

/// Everything the initiator derives from a request: the private vector and
/// key, plus the public remainder vector and hint matrix.
#[derive(Debug, Clone)]
pub struct SealedRequest {
    /// The request vector — **private to the initiator**.
    pub vector: RequestVector,
    /// Public: the remainder vector.
    pub remainder: RemainderVector,
    /// Public: the hint matrix (fuzzy requests only).
    pub hint: Option<HintMatrix>,
    /// The profile key — private; used to encrypt the sealed message.
    pub key: ProfileKey,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(c: &str, v: &str) -> Attribute {
        Attribute::new(c, v)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn validation_errors() {
        assert_eq!(RequestProfile::new(vec![], vec![], 0), Err(RequestError::Empty));
        assert!(matches!(
            RequestProfile::new(vec![], vec![attr("a", "1")], 2),
            Err(RequestError::BetaTooLarge { .. })
        ));
        assert!(matches!(
            RequestProfile::new(vec![attr("a", "1")], vec![attr("A", "1")], 0),
            Err(RequestError::Overlap(_))
        ));
    }

    #[test]
    fn dedup_within_sets() {
        let r = RequestProfile::new(
            vec![attr("a", "1"), attr("A", "1")],
            vec![attr("b", "2"), attr("b", "2"), attr("c", "3")],
            1,
        )
        .unwrap();
        assert_eq!(r.alpha(), 1);
        assert_eq!(r.optional().len(), 2);
    }

    #[test]
    fn exact_request_has_gamma_zero() {
        let r = RequestProfile::exact(vec![attr("a", "1"), attr("b", "2")]).unwrap();
        assert_eq!(r.gamma(), 0);
        assert!((r.theta() - 1.0).abs() < 1e-12);
        let sealed = r.seal(11, &mut rng());
        assert!(sealed.hint.is_none());
    }

    #[test]
    fn threshold_request() {
        let r = RequestProfile::threshold(vec![attr("a", "1"), attr("b", "2"), attr("c", "3")], 2)
            .unwrap();
        assert_eq!(r.alpha(), 0);
        assert_eq!(r.beta(), 2);
        assert_eq!(r.gamma(), 1);
    }

    #[test]
    fn seal_rejects_small_modulus() {
        let r = RequestProfile::exact(vec![attr("a", "1"), attr("b", "2")]).unwrap();
        assert!(matches!(
            r.try_seal(2, HintConstruction::Cauchy, &mut rng()),
            Err(RequestError::ModulusTooSmall { .. })
        ));
    }

    #[test]
    fn is_satisfied_by_ground_truth() {
        let r = RequestProfile::new(
            vec![attr("prof", "engineer")],
            vec![attr("i", "jazz"), attr("i", "go"), attr("i", "tea")],
            2,
        )
        .unwrap();
        let yes = Profile::from_attributes(vec![
            attr("prof", "engineer"),
            attr("i", "jazz"),
            attr("i", "go"),
        ]);
        let missing_necessary =
            Profile::from_attributes(vec![attr("i", "jazz"), attr("i", "go"), attr("i", "tea")]);
        let too_few_optional =
            Profile::from_attributes(vec![attr("prof", "engineer"), attr("i", "jazz")]);
        assert!(r.is_satisfied_by(&yes));
        assert!(!r.is_satisfied_by(&missing_necessary));
        assert!(!r.is_satisfied_by(&too_few_optional));
    }

    #[test]
    fn vector_blocks_sorted() {
        let r = RequestProfile::new(
            vec![attr("z", "9"), attr("a", "1")],
            vec![attr("m", "5"), attr("b", "2"), attr("q", "7")],
            2,
        )
        .unwrap();
        let v = r.vector();
        assert!(v.necessary().windows(2).all(|w| w[0] < w[1]));
        assert!(v.optional().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v.full().len(), 5);
    }

    #[test]
    fn key_stable_across_seals() {
        let r = RequestProfile::new(vec![attr("a", "1")], vec![attr("b", "2"), attr("c", "3")], 1)
            .unwrap();
        let s1 = r.seal(11, &mut rng());
        let s2 = r.seal(11, &mut StdRng::seed_from_u64(99));
        assert_eq!(s1.key, s2.key, "profile key depends only on attributes");
    }

    #[test]
    fn matching_profile_key_equality() {
        // The profile key of an exact request equals the profile key of a
        // profile holding exactly those attributes — the basic mechanism's
        // core identity.
        let attrs = vec![attr("a", "1"), attr("b", "2"), attr("c", "3")];
        let r = RequestProfile::exact(attrs.clone()).unwrap();
        let p = Profile::from_attributes(attrs);
        assert_eq!(r.vector().profile_key(), p.vector().profile_key());
    }

    #[test]
    fn from_hashes_validates_beta() {
        let hs: Vec<AttributeHash> = (0..3).map(|i| attr("x", &i.to_string()).hash()).collect();
        let v = RequestVector::from_hashes(vec![], hs.clone(), 3);
        assert_eq!(v.gamma(), 0);
    }
}
