//! Profiles, profile vectors and profile keys (paper Eqs. 2–3).
//!
//! A [`Profile`] is a user's attribute set; its [`ProfileVector`] is the
//! sorted list of attribute hashes `H_k = [h¹, …, hᵐ]`; the
//! [`ProfileKey`] is `K = H(H_k)` — hashing the concatenated, sorted
//! hashes — used directly as an AES-256 key.

use crate::attribute::{Attribute, AttributeHash};
use msb_crypto::sha256::Sha256;
use std::collections::BTreeSet;
use std::fmt;

/// A user's profile: a de-duplicated set of attributes.
///
/// # Example
///
/// ```
/// use msb_profile::attribute::Attribute;
/// use msb_profile::profile::Profile;
///
/// let p = Profile::from_attributes(vec![
///     Attribute::new("sex", "male"),
///     Attribute::new("interest", "basketball"),
/// ]);
/// assert_eq!(p.len(), 2);
/// let key = p.vector().profile_key();
/// assert_eq!(key.as_bytes().len(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    attributes: BTreeSet<Attribute>,
    vector: ProfileVector,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a profile from attributes, de-duplicating and pre-computing
    /// the sorted hash vector (the paper notes hashes are "calculated once
    /// and used repetitively until the attributes are updated").
    pub fn from_attributes(attrs: impl IntoIterator<Item = Attribute>) -> Self {
        let attributes: BTreeSet<Attribute> = attrs.into_iter().collect();
        let vector = ProfileVector::from_hashes(Attribute::hash_many(attributes.iter()));
        Profile { attributes, vector }
    }

    /// Adds one attribute, keeping the vector in sync.
    pub fn insert(&mut self, attr: Attribute) {
        if self.attributes.insert(attr) {
            self.rebuild();
        }
    }

    /// Removes an attribute, keeping the vector in sync.
    pub fn remove(&mut self, attr: &Attribute) -> bool {
        let removed = self.attributes.remove(attr);
        if removed {
            self.rebuild();
        }
        removed
    }

    fn rebuild(&mut self) {
        self.vector = ProfileVector::from_hashes(Attribute::hash_many(self.attributes.iter()));
    }

    /// Number of attributes `m_k`.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Whether the profile contains an equivalent (normalized) attribute.
    pub fn contains(&self, attr: &Attribute) -> bool {
        let h = attr.hash();
        self.vector.hashes().binary_search(&h).is_ok()
    }

    /// Iterates over the attributes.
    pub fn iter(&self) -> impl Iterator<Item = &Attribute> {
        self.attributes.iter()
    }

    /// The sorted profile vector `H_k` (pre-computed).
    pub fn vector(&self) -> &ProfileVector {
        &self.vector
    }

    /// Shared attribute count with another profile — the evaluation's
    /// "similarity" ground truth (Fig. 6).
    pub fn shared_attributes(&self, other: &Profile) -> usize {
        let mine = self.vector.hashes();
        other.vector.hashes().iter().filter(|h| mine.binary_search(h).is_ok()).count()
    }
}

impl FromIterator<Attribute> for Profile {
    fn from_iter<T: IntoIterator<Item = Attribute>>(iter: T) -> Self {
        Self::from_attributes(iter)
    }
}

impl Extend<Attribute> for Profile {
    fn extend<T: IntoIterator<Item = Attribute>>(&mut self, iter: T) {
        let mut changed = false;
        for attr in iter {
            changed |= self.attributes.insert(attr);
        }
        if changed {
            self.rebuild();
        }
    }
}

/// A sorted vector of attribute hashes `H_k` (paper Eq. 2).
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct ProfileVector {
    hashes: Vec<AttributeHash>,
}

impl ProfileVector {
    /// Builds from hashes, sorting and de-duplicating.
    pub fn from_hashes(hashes: impl IntoIterator<Item = AttributeHash>) -> Self {
        let mut hashes: Vec<AttributeHash> = hashes.into_iter().collect();
        hashes.sort_unstable();
        hashes.dedup();
        ProfileVector { hashes }
    }

    /// The sorted hashes.
    pub fn hashes(&self) -> &[AttributeHash] {
        &self.hashes
    }

    /// Number of entries `m`.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The profile key `K = H(H_k)` (paper Eq. 3): SHA-256 over the
    /// concatenated sorted hashes.
    pub fn profile_key(&self) -> ProfileKey {
        ProfileKey::from_hashes(&self.hashes)
    }

    /// Remainders of every entry mod `p` (paper Eq. 4) in vector order.
    pub fn remainders(&self, p: u64) -> Vec<u64> {
        self.hashes.iter().map(|h| h.remainder(p)).collect()
    }
}

/// A 256-bit profile key — used directly as an AES-256 key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProfileKey([u8; 32]);

impl ProfileKey {
    /// `H(h¹ ‖ h² ‖ … ‖ hᵐ)` over sorted hashes.
    pub fn from_hashes(hashes: &[AttributeHash]) -> Self {
        Self::from_midstate(&Self::midstate(&[]), hashes)
    }

    /// A SHA-256 midstate that has absorbed `prefix`. The candidate
    /// enumeration shares the necessary-block prefix across consecutive
    /// assignments, so deriving keys via [`ProfileKey::from_midstate`]
    /// skips re-hashing it (32 bytes per attribute, i.e. one saved
    /// compression per two prefix hashes).
    pub fn midstate(prefix: &[AttributeHash]) -> Sha256 {
        let mut h = Sha256::new();
        for hash in prefix {
            h.update(hash.as_bytes());
        }
        h
    }

    /// Completes a key from a [`ProfileKey::midstate`] plus the
    /// remaining hashes. Equals `from_hashes(prefix ‖ suffix)` exactly
    /// (the midstate contract, pinned by differential tests).
    pub fn from_midstate(midstate: &Sha256, suffix: &[AttributeHash]) -> Self {
        let mut h = midstate.clone();
        for hash in suffix {
            h.update(hash.as_bytes());
        }
        ProfileKey(h.finalize())
    }

    /// The key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for ProfileKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material in full.
        write!(f, "ProfileKey({:02x}{:02x}…)", self.0[0], self.0[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(c: &str, v: &str) -> Attribute {
        Attribute::new(c, v)
    }

    #[test]
    fn vector_is_sorted_and_deduped() {
        let p = Profile::from_attributes(vec![
            attr("b", "2"),
            attr("a", "1"),
            attr("B", "2"), // duplicate after normalization
        ]);
        let v = p.vector();
        assert_eq!(v.len(), 2);
        assert!(v.hashes().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn key_independent_of_insertion_order() {
        let p1 = Profile::from_attributes(vec![attr("a", "1"), attr("b", "2"), attr("c", "3")]);
        let p2 = Profile::from_attributes(vec![attr("c", "3"), attr("a", "1"), attr("b", "2")]);
        assert_eq!(p1.vector().profile_key(), p2.vector().profile_key());
    }

    #[test]
    fn key_changes_with_any_attribute() {
        let p1 = Profile::from_attributes(vec![attr("a", "1"), attr("b", "2")]);
        let p2 = Profile::from_attributes(vec![attr("a", "1"), attr("b", "3")]);
        assert_ne!(p1.vector().profile_key(), p2.vector().profile_key());
    }

    #[test]
    fn empty_profile_has_key() {
        // Even an empty vector hashes to something (never used in matching
        // — requests require at least one attribute).
        let p = Profile::new();
        assert!(p.is_empty());
        assert_eq!(p.vector().profile_key().as_bytes(), &Sha256::digest(b""));
    }

    #[test]
    fn midstate_key_equals_from_hashes_at_all_splits() {
        let hashes: Vec<AttributeHash> = (0..7).map(|i| attr("t", &i.to_string()).hash()).collect();
        let expect = ProfileKey::from_hashes(&hashes);
        // Oracle: direct SHA-256 over the concatenation.
        let mut h = Sha256::new();
        for hash in &hashes {
            h.update(hash.as_bytes());
        }
        assert_eq!(expect.as_bytes(), &h.finalize());
        for cut in 0..=hashes.len() {
            let mid = ProfileKey::midstate(&hashes[..cut]);
            assert_eq!(ProfileKey::from_midstate(&mid, &hashes[cut..]), expect, "cut {cut}");
            // The midstate is reusable (not consumed).
            assert_eq!(ProfileKey::from_midstate(&mid, &hashes[cut..]), expect, "cut {cut} reuse");
        }
    }

    #[test]
    fn insert_remove_keep_vector_synced() {
        let mut p = Profile::new();
        p.insert(attr("a", "1"));
        p.insert(attr("b", "2"));
        let with_both = p.vector().profile_key();
        assert!(p.remove(&attr("b", "2")));
        assert!(!p.remove(&attr("b", "2")));
        p.insert(attr("b", "2"));
        assert_eq!(p.vector().profile_key(), with_both);
    }

    #[test]
    fn contains_uses_normalized_equality() {
        let p = Profile::from_attributes(vec![attr("interest", "Computer Games")]);
        assert!(p.contains(&attr("Interest", "computergame")));
        assert!(!p.contains(&attr("interest", "chess")));
    }

    #[test]
    fn shared_attributes_counts_intersection() {
        let p1 = Profile::from_attributes(vec![attr("a", "1"), attr("b", "2"), attr("c", "3")]);
        let p2 = Profile::from_attributes(vec![attr("b", "2"), attr("c", "3"), attr("d", "4")]);
        assert_eq!(p1.shared_attributes(&p2), 2);
        assert_eq!(p2.shared_attributes(&p1), 2);
        assert_eq!(p1.shared_attributes(&p1), 3);
    }

    #[test]
    fn extend_and_collect() {
        let mut p: Profile = vec![attr("a", "1")].into_iter().collect();
        p.extend(vec![attr("b", "2"), attr("c", "3")]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn remainders_in_range() {
        let p = Profile::from_attributes((0..10).map(|i| attr("t", &i.to_string())));
        for r in p.vector().remainders(11) {
            assert!(r < 11);
        }
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = Profile::from_attributes(vec![attr("a", "1")]).vector().profile_key();
        let s = format!("{k:?}");
        assert!(s.len() < 24, "debug form must be truncated: {s}");
    }
}
