//! Attribute and profile entropy (paper Defs. 4–6) and the ϕ-entropy
//! privacy policies of Protocol 3.
//!
//! The entropy model holds, per attribute category, the empirical value
//! distribution (in deployment: published aggregate statistics; in this
//! repo: the synthetic Weibo dataset's tag frequencies). A participant
//! caps the entropy of the attribute set they are willing to gamble in a
//! Protocol-3 reply at a personal budget ϕ, chosen by k-anonymity or by
//! sensitive-attribute rules.

use crate::attribute::Attribute;
use std::collections::{BTreeMap, BTreeSet};

/// Empirical value distributions per attribute category.
///
/// # Example
///
/// ```
/// use msb_profile::entropy::EntropyModel;
///
/// let model = EntropyModel::from_counts([
///     ("sex", "male", 50u64),
///     ("sex", "female", 50),
///     ("interest", "jazz", 1),
///     ("interest", "go", 99),
/// ]);
/// let s_sex = model.attribute_entropy("sex");
/// assert!((s_sex - 1.0).abs() < 1e-9); // uniform binary = 1 bit
/// assert!(model.attribute_entropy("interest") < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EntropyModel {
    categories: BTreeMap<String, BTreeMap<String, u64>>,
    totals: BTreeMap<String, u64>,
}

impl EntropyModel {
    /// An empty model (every category has zero entropy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(category, value, count)` observations. Categories and
    /// values are taken verbatim (callers should pass normalized forms if
    /// they want normalized statistics).
    pub fn from_counts<C, V>(counts: impl IntoIterator<Item = (C, V, u64)>) -> Self
    where
        C: Into<String>,
        V: Into<String>,
    {
        let mut model = Self::new();
        for (c, v, n) in counts {
            model.observe_n(&c.into(), &v.into(), n);
        }
        model
    }

    /// Records `n` occurrences of `value` under `category`.
    pub fn observe_n(&mut self, category: &str, value: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self
            .categories
            .entry(category.to_string())
            .or_default()
            .entry(value.to_string())
            .or_insert(0) += n;
        *self.totals.entry(category.to_string()).or_insert(0) += n;
    }

    /// Records a single occurrence.
    pub fn observe(&mut self, category: &str, value: &str) {
        self.observe_n(category, value, 1);
    }

    /// `P(category = value)`; 0 for unseen pairs.
    pub fn probability(&self, category: &str, value: &str) -> f64 {
        let total = match self.totals.get(category) {
            Some(&t) if t > 0 => t as f64,
            _ => return 0.0,
        };
        let count = self.categories.get(category).and_then(|m| m.get(value)).copied().unwrap_or(0);
        count as f64 / total
    }

    /// Shannon entropy of a category's value distribution in bits —
    /// `S(aᵢ)` of Def. 4. Unknown categories have zero entropy.
    pub fn attribute_entropy(&self, category: &str) -> f64 {
        let Some(values) = self.categories.get(category) else {
            return 0.0;
        };
        let total = self.totals[category] as f64;
        values
            .values()
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum()
    }

    /// `S(A) = Σ S(aᵢ)` over the profile's attributes — Def. 5. Duplicate
    /// categories contribute once per attribute, exactly as the paper's
    /// sum over the attribute list does.
    pub fn profile_entropy<'a>(&self, attrs: impl IntoIterator<Item = &'a Attribute>) -> f64 {
        attrs.into_iter().map(|a| self.attribute_entropy(a.category())).sum()
    }

    /// Entropy of the *union* of several attribute sets (de-duplicated by
    /// attribute hash) — the `S(⋃ Aᵢ_c)` bound of Protocol 3 step 2.
    pub fn union_entropy<'a>(&self, sets: impl IntoIterator<Item = &'a [Attribute]>) -> f64 {
        let mut seen = BTreeSet::new();
        let mut unioned: Vec<&Attribute> = Vec::new();
        for set in sets {
            for a in set {
                if seen.insert(a.hash()) {
                    unioned.push(a);
                }
            }
        }
        self.profile_entropy(unioned)
    }

    /// Self-information (surprisal) of one attribute value in bits:
    /// `-log₂ P(value | category)`. Unseen values get `f64::INFINITY` —
    /// maximally identifying, never worth gambling.
    pub fn surprisal(&self, attr: &Attribute) -> f64 {
        let p = self.probability(attr.category(), attr.value());
        if p <= 0.0 {
            f64::INFINITY
        } else {
            -p.log2()
        }
    }
}

/// ϕ from the k-anonymity rule (paper §III-E option 1): a user willing to
/// be hidden among at least `k` of `n` users may leak at most
/// `log₂(n / k)` bits.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn phi_k_anonymity(n: usize, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "k cannot exceed the population");
    (n as f64 / k as f64).log2()
}

/// ϕ from the sensitive-attributes rule (paper §III-E option 2): the
/// budget is the minimum entropy over the user's sensitive attributes, so
/// no single sensitive attribute can be fully disclosed.
///
/// Returns `f64::INFINITY` when `sensitive` is empty (no restriction).
pub fn phi_sensitive(model: &EntropyModel, sensitive: &[Attribute]) -> f64 {
    sensitive.iter().map(|a| model.attribute_entropy(a.category())).fold(f64::INFINITY, f64::min)
}

/// Greedily selects a prefix of `candidate_sets` whose union entropy stays
/// within `phi` (Protocol 3 step 2: the responder gambles only
/// low-entropy candidate profiles). Returns the selected indices.
pub fn select_within_budget(
    model: &EntropyModel,
    candidate_sets: &[Vec<Attribute>],
    phi: f64,
) -> Vec<usize> {
    let mut selected: Vec<usize> = Vec::new();
    let mut union: Vec<Attribute> = Vec::new();
    let mut seen = BTreeSet::new();
    for (i, set) in candidate_sets.iter().enumerate() {
        let mut trial = union.clone();
        let mut trial_seen = seen.clone();
        for a in set {
            if trial_seen.insert(a.hash()) {
                trial.push(a.clone());
            }
        }
        if model.profile_entropy(trial.iter()) <= phi {
            union = trial;
            seen = trial_seen;
            selected.push(i);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(c: &str, v: &str) -> Attribute {
        Attribute::new(c, v)
    }

    fn model() -> EntropyModel {
        EntropyModel::from_counts([
            ("sex", "male", 50u64),
            ("sex", "female", 50),
            ("city", "a", 25),
            ("city", "b", 25),
            ("city", "c", 25),
            ("city", "d", 25),
            ("rare", "unique", 1),
            ("rare", "common", 1023),
        ])
    }

    #[test]
    fn uniform_entropy() {
        let m = model();
        assert!((m.attribute_entropy("sex") - 1.0).abs() < 1e-9);
        assert!((m.attribute_entropy("city") - 2.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_entropy_below_uniform() {
        let m = model();
        let s = m.attribute_entropy("rare");
        assert!(s > 0.0 && s < 1.0, "skewed binary entropy: {s}");
    }

    #[test]
    fn unknown_category_zero() {
        assert_eq!(model().attribute_entropy("nope"), 0.0);
    }

    #[test]
    fn profile_entropy_sums() {
        let m = model();
        let attrs = [attr("sex", "male"), attr("city", "a")];
        assert!((m.profile_entropy(attrs.iter()) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn union_entropy_deduplicates() {
        let m = model();
        let s1 = vec![attr("sex", "male"), attr("city", "a")];
        let s2 = vec![attr("sex", "male"), attr("city", "b")];
        // union = {sex:male, city:a, city:b} -> 1 + 2 + 2 bits
        let u = m.union_entropy([s1.as_slice(), s2.as_slice()]);
        assert!((u - 5.0).abs() < 1e-9, "{u}");
    }

    #[test]
    fn surprisal_values() {
        let m = model();
        assert!((m.surprisal(&attr("rare", "unique")) - 10.0).abs() < 1e-9); // 1/1024
        assert!(m.surprisal(&attr("rare", "never-seen")).is_infinite());
    }

    #[test]
    fn phi_k_anonymity_values() {
        assert!((phi_k_anonymity(1024, 2) - 9.0).abs() < 1e-9);
        assert_eq!(phi_k_anonymity(16, 16), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn phi_k_zero_panics() {
        let _ = phi_k_anonymity(10, 0);
    }

    #[test]
    fn phi_sensitive_is_min() {
        let m = model();
        let phi = phi_sensitive(&m, &[attr("sex", "male"), attr("city", "a")]);
        assert!((phi - 1.0).abs() < 1e-9);
        assert!(phi_sensitive(&m, &[]).is_infinite());
    }

    #[test]
    fn select_within_budget_respects_phi() {
        let m = model();
        let sets = vec![
            vec![attr("sex", "male")],                    // 1 bit
            vec![attr("city", "a")],                      // +2 bits = 3
            vec![attr("city", "b"), attr("sex", "male")], // +2 bits = 5 (sex deduped)
        ];
        let sel = select_within_budget(&m, &sets, 3.0);
        assert_eq!(sel, vec![0, 1]);
        let sel_all = select_within_budget(&m, &sets, 10.0);
        assert_eq!(sel_all, vec![0, 1, 2]);
        let sel_none = select_within_budget(&m, &sets, 0.5);
        assert!(sel_none.is_empty());
    }

    #[test]
    fn probability_basics() {
        let m = model();
        assert!((m.probability("sex", "male") - 0.5).abs() < 1e-12);
        assert_eq!(m.probability("sex", "robot"), 0.0);
        assert_eq!(m.probability("ghost", "x"), 0.0);
    }
}
