//! Canonical wire encodings for the profile-layer structures
//! ([`RemainderVector`], [`HintMatrix`]) on the shared [`msb_wire`]
//! engine. These are *body* encodings: the request package embeds them,
//! and `docs/WIRE.md` specifies the exact layouts.
//!
//! # Layouts
//!
//! Remainder vector (`14 + 4·m_t` bytes):
//!
//! ```text
//! u64 p | u16 alpha | u16 opt_len | u16 beta | u32 × alpha | u32 × opt_len
//! ```
//!
//! Hint matrix (`5 + 56·γ` bytes for Cauchy, plus `56·γ·β` for Random):
//!
//! ```text
//! u8 construction (1 = Cauchy, 2 = Random) | u16 gamma | u16 beta
//! | B: gamma × 56-byte field elements
//! | Random only: R, row-major gamma·beta × 56-byte field elements
//! ```
//!
//! Decoding is strict: remainders must lie below `p`, `p` must fit the
//! 32-bit entry width it implies, field elements must be canonical
//! (below the Goldilocks-448 modulus), and shape fields must be
//! internally consistent — every violation reports the offset of the
//! offending field.

use crate::hint::{HintConstruction, HintMatrix};
use crate::remainder::RemainderVector;
use msb_bignum::linalg::Matrix;
use msb_bignum::{BigUint, PrimeField};
use msb_wire::{DecodeError, Reader, WireDecode, WireEncode, Writer};

/// Field-element width on the wire (Goldilocks-448 → 56 bytes).
pub const FIELD_BYTES: usize = 56;

/// Maximum hint dimension (γ and β each) the wire format accepts.
///
/// A decoded hint triggers derived work the wire bytes do not pay for —
/// the Cauchy construction rebuilds `R` with γ·β field inversions and
/// `C = [I | R]` allocates a γ×(γ+β) matrix — so the decoder bounds
/// both dimensions *before* reading elements or constructing anything.
/// 256 is ~2× the largest attribute count in the evaluation dataset
/// (129 keywords) and keeps the worst-case reconstruction in the tens
/// of milliseconds; encoding asserts the same bound so an encodable
/// hint is always decodable.
pub const MAX_HINT_DIM: usize = 256;

impl WireEncode for RemainderVector {
    fn encoded_len(&self) -> usize {
        8 + 2 + 2 + 2 + 4 * self.len()
    }

    /// # Panics
    ///
    /// Panics when the vector is not wire-representable: `p` above
    /// `u32::MAX` (entries are 32-bit) or more than `u16::MAX` entries
    /// per block. [`RemainderVector::new`] with the paper's parameters
    /// (`p` a small prime, a handful of attributes) never gets close.
    fn encode_into(&self, w: &mut Writer) {
        assert!(self.p() <= u32::MAX as u64, "modulus too wide for 32-bit remainder entries");
        assert!(
            self.necessary().len() <= u16::MAX as usize
                && self.optional().len() <= u16::MAX as usize,
            "remainder block too long for u16 counts"
        );
        w.u64(self.p());
        w.u16(self.necessary().len() as u16);
        w.u16(self.optional().len() as u16);
        w.u16(self.beta() as u16);
        for &r in self.necessary() {
            w.u32(r as u32);
        }
        for &r in self.optional() {
            w.u32(r as u32);
        }
    }
}

impl WireDecode for RemainderVector {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let p_at = r.offset();
        let p = r.u64()?;
        if p < 2 {
            return Err(r.invalid(p_at, "modulus below 2"));
        }
        if p > u32::MAX as u64 {
            // Entries are 32-bit on the wire; a wider modulus could not
            // have produced a faithful encoding.
            return Err(r.invalid(p_at, "modulus too wide for 32-bit remainder entries"));
        }
        let shape_at = r.offset();
        let alpha = r.u16()? as usize;
        let opt_len = r.u16()? as usize;
        let beta = r.u16()? as usize;
        if alpha + opt_len == 0 {
            return Err(r.invalid(shape_at, "empty request vector"));
        }
        if beta > opt_len {
            return Err(r.invalid(shape_at, "beta exceeds optional count"));
        }
        let mut read_block = |n: usize| -> Result<Vec<u64>, DecodeError> {
            let mut block = Vec::with_capacity(n);
            for _ in 0..n {
                let at = r.offset();
                let v = r.u32()? as u64;
                if v >= p {
                    return Err(r.invalid(at, "remainder not below the modulus"));
                }
                block.push(v);
            }
            Ok(block)
        };
        let necessary = read_block(alpha)?;
        let optional = read_block(opt_len)?;
        // All `from_remainders` preconditions were checked above, so the
        // constructor cannot panic.
        Ok(RemainderVector::from_remainders(p, necessary, optional, beta))
    }
}

/// Reads one canonical Goldilocks-448 field element.
fn field_element(
    r: &mut Reader<'_>,
    field: &PrimeField,
    what: &'static str,
) -> Result<BigUint, DecodeError> {
    let at = r.offset();
    let v = BigUint::from_be_bytes(r.take(FIELD_BYTES)?);
    if v >= *field.modulus() {
        return Err(r.invalid(at, what));
    }
    Ok(v)
}

impl WireEncode for HintMatrix {
    fn encoded_len(&self) -> usize {
        let r_len = match self.construction() {
            HintConstruction::Cauchy => 0,
            HintConstruction::Random => FIELD_BYTES * self.gamma() * self.beta(),
        };
        1 + 2 + 2 + FIELD_BYTES * self.gamma() + r_len
    }

    /// # Panics
    ///
    /// Panics when γ or β exceed [`MAX_HINT_DIM`] (unreachable for any
    /// hint a realistic request can construct; the bound keeps every
    /// encodable hint decodable).
    fn encode_into(&self, w: &mut Writer) {
        assert!(
            self.gamma() <= MAX_HINT_DIM && self.beta() <= MAX_HINT_DIM,
            "hint dimensions exceed the wire limit"
        );
        let tag = match self.construction() {
            HintConstruction::Cauchy => 1,
            HintConstruction::Random => 2,
        };
        w.u8(tag);
        w.u16(self.gamma() as u16);
        w.u16(self.beta() as u16);
        for b in self.b() {
            w.bytes(&b.to_be_bytes_padded(FIELD_BYTES));
        }
        if self.construction() == HintConstruction::Random {
            let c = self.constraint_matrix();
            for i in 0..self.gamma() {
                for j in 0..self.beta() {
                    w.bytes(&c.at(i, self.gamma() + j).to_be_bytes_padded(FIELD_BYTES));
                }
            }
        }
    }
}

/// Decodes a hint matrix whose (γ, β) must match an expected shape the
/// caller already knows (the request package's remainder vector). The
/// shape check runs immediately after reading the dimension fields —
/// before any element is read or any matrix is constructed — so a
/// frame claiming inconsistent or oversized dimensions is rejected in
/// O(1).
pub fn decode_hint_with_shape(
    r: &mut Reader<'_>,
    expected_gamma: usize,
    expected_beta: usize,
) -> Result<HintMatrix, DecodeError> {
    decode_hint(r, Some((expected_gamma, expected_beta)))
}

fn decode_hint(
    r: &mut Reader<'_>,
    expected: Option<(usize, usize)>,
) -> Result<HintMatrix, DecodeError> {
    let tag_at = r.offset();
    let construction = match r.u8()? {
        1 => HintConstruction::Cauchy,
        2 => HintConstruction::Random,
        _ => return Err(r.invalid(tag_at, "unknown hint construction")),
    };
    let dims_at = r.offset();
    let gamma = r.u16()? as usize;
    let beta = r.u16()? as usize;
    if gamma == 0 {
        return Err(r.invalid(dims_at, "hint with gamma = 0"));
    }
    // Bound the derived construction cost before trusting the claimed
    // dimensions any further (see [`MAX_HINT_DIM`]).
    if gamma > MAX_HINT_DIM || beta > MAX_HINT_DIM {
        return Err(r.invalid(dims_at, "hint dimension exceeds the wire limit"));
    }
    if let Some((eg, eb)) = expected {
        if gamma != eg || beta != eb {
            return Err(r.invalid(dims_at, "hint shape disagrees with remainder vector"));
        }
    }
    let field = PrimeField::goldilocks448();
    let mut b = Vec::with_capacity(gamma);
    for _ in 0..gamma {
        b.push(field_element(r, &field, "non-canonical field element in B")?);
    }
    let r_block = match construction {
        HintConstruction::Cauchy => None,
        HintConstruction::Random => {
            let mut m = Matrix::zeros(gamma, beta);
            for i in 0..gamma {
                for j in 0..beta {
                    *m.at_mut(i, j) = field_element(r, &field, "non-canonical field element in R")?;
                }
            }
            Some(m)
        }
    };
    // `from_parts` preconditions (gamma > 0, R dimensions, Cauchy
    // without R) all hold by construction here.
    Ok(HintMatrix::from_parts(beta, construction, r_block, b))
}

impl WireDecode for HintMatrix {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        decode_hint(r, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{Attribute, AttributeHash};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sorted_hashes(n: usize) -> Vec<AttributeHash> {
        let mut hs: Vec<AttributeHash> =
            (0..n).map(|i| Attribute::new("interest", format!("topic-{i}")).hash()).collect();
        hs.sort_unstable();
        hs
    }

    fn remainder(alpha: usize, opt: usize, beta: usize, p: u64) -> RemainderVector {
        let hashes = sorted_hashes(alpha + opt);
        RemainderVector::new(p, &hashes[..alpha], &hashes[alpha..], beta)
    }

    #[test]
    fn remainder_roundtrip() {
        for (alpha, opt, beta, p) in [(2, 3, 2, 11), (0, 4, 4, 23), (3, 0, 0, 97)] {
            let rv = remainder(alpha, opt, beta, p);
            let body = rv.encode_body();
            assert_eq!(body.len(), rv.encoded_len());
            assert_eq!(RemainderVector::decode_body(&body).unwrap(), rv);
        }
    }

    #[test]
    fn remainder_strictness() {
        let rv = remainder(1, 2, 1, 11);
        let body = rv.encode_body();

        // Remainder >= p.
        let mut bad = body.clone();
        let entry_at = 14; // first necessary entry
        bad[entry_at..entry_at + 4].copy_from_slice(&200u32.to_be_bytes());
        assert_eq!(
            RemainderVector::decode_body(&bad),
            Err(DecodeError::Invalid { offset: entry_at, what: "remainder not below the modulus" })
        );

        // beta > optional count.
        let mut bad = body.clone();
        bad[12..14].copy_from_slice(&9u16.to_be_bytes());
        assert!(matches!(
            RemainderVector::decode_body(&bad),
            Err(DecodeError::Invalid { offset: 8, .. })
        ));

        // Modulus wider than the 32-bit entry width.
        let mut bad = body.clone();
        bad[..8].copy_from_slice(&(u32::MAX as u64 + 1).to_be_bytes());
        assert!(matches!(
            RemainderVector::decode_body(&bad),
            Err(DecodeError::Invalid { offset: 0, what: w }) if w.contains("32-bit")
        ));

        // Trailing garbage.
        let mut bad = body.clone();
        bad.push(0);
        assert_eq!(
            RemainderVector::decode_body(&bad),
            Err(DecodeError::Trailing { offset: body.len() })
        );
    }

    #[test]
    fn hint_roundtrip_both_constructions() {
        let mut rng = StdRng::seed_from_u64(5);
        let opt = sorted_hashes(5); // beta = 3, gamma = 2
        for construction in [HintConstruction::Cauchy, HintConstruction::Random] {
            let hint = HintMatrix::generate(&opt, 3, construction, &mut rng);
            let body = hint.encode_body();
            assert_eq!(body.len(), hint.encoded_len());
            let decoded = HintMatrix::decode_body(&body).unwrap();
            assert_eq!(decoded, hint, "{construction:?}");
        }
    }

    #[test]
    fn hint_cauchy_is_much_smaller() {
        let mut rng = StdRng::seed_from_u64(5);
        let opt = sorted_hashes(6);
        let cauchy = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng);
        let random = HintMatrix::generate(&opt, 3, HintConstruction::Random, &mut rng);
        assert!(cauchy.encoded_len() < random.encoded_len());
        assert_eq!(
            random.encoded_len() - cauchy.encoded_len(),
            FIELD_BYTES * cauchy.gamma() * cauchy.beta()
        );
    }

    #[test]
    fn hint_rejects_non_canonical_field_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let opt = sorted_hashes(4);
        let hint = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng);
        let mut body = hint.encode_body();
        // Saturate the first B element: >= the Goldilocks-448 modulus.
        for b in body.iter_mut().skip(5).take(FIELD_BYTES) {
            *b = 0xFF;
        }
        assert_eq!(
            HintMatrix::decode_body(&body),
            Err(DecodeError::Invalid { offset: 5, what: "non-canonical field element in B" })
        );
    }

    #[test]
    fn hint_rejects_bad_tag_and_gamma_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let opt = sorted_hashes(4);
        let hint = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng);
        let mut body = hint.encode_body();
        body[0] = 7;
        assert_eq!(
            HintMatrix::decode_body(&body),
            Err(DecodeError::Invalid { offset: 0, what: "unknown hint construction" })
        );
        let bad = [1u8, 0, 0, 0, 3]; // tag Cauchy, gamma = 0, beta = 3
        assert_eq!(
            HintMatrix::decode_body(&bad),
            Err(DecodeError::Invalid { offset: 1, what: "hint with gamma = 0" })
        );
    }

    #[test]
    fn oversized_hint_dimensions_rejected_in_constant_time() {
        // A frame claiming γ = β = 0xFFFF must be rejected from the
        // 5-byte header alone — before the decoder reads elements or
        // builds any matrix (the construction would cost ~4·10⁹ field
        // inversions and a hundreds-of-GB allocation).
        let header = [1u8, 0xFF, 0xFF, 0xFF, 0xFF];
        let start = std::time::Instant::now();
        let err = HintMatrix::decode_body(&header).unwrap_err();
        assert!(start.elapsed().as_millis() < 100, "rejection must not do derived work");
        assert_eq!(
            err,
            DecodeError::Invalid { offset: 1, what: "hint dimension exceeds the wire limit" }
        );

        // Same guard on the shape-checked path, even when the expected
        // shape agrees with the oversized claim.
        let mut r = Reader::new(&header);
        let err = decode_hint_with_shape(&mut r, 0xFFFF, 0xFFFF).unwrap_err();
        assert_eq!(
            err,
            DecodeError::Invalid { offset: 1, what: "hint dimension exceeds the wire limit" }
        );
    }

    #[test]
    fn shape_checked_decode_rejects_mismatch_before_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let opt = sorted_hashes(4); // beta = 3, gamma = 1
        let hint = HintMatrix::generate(&opt, 3, HintConstruction::Cauchy, &mut rng);
        let body = hint.encode_body();
        // Truncate everything after the 5-byte header: a mismatch must
        // be detected without needing the element bytes at all.
        let mut r = Reader::new(&body[..5]);
        let err = decode_hint_with_shape(&mut r, 2, 3).unwrap_err();
        assert_eq!(
            err,
            DecodeError::Invalid { offset: 1, what: "hint shape disagrees with remainder vector" }
        );
        // The matching shape decodes fine from the full body.
        let mut r = Reader::new(&body);
        assert_eq!(decode_hint_with_shape(&mut r, 1, 3).unwrap(), hint);
    }

    #[test]
    fn truncation_never_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let opt = sorted_hashes(5);
        let hint = HintMatrix::generate(&opt, 2, HintConstruction::Random, &mut rng);
        let body = hint.encode_body();
        for cut in 0..body.len() {
            assert!(HintMatrix::decode_body(&body[..cut]).is_err(), "cut at {cut}");
        }
        let rv = remainder(2, 3, 2, 11);
        let body = rv.encode_body();
        for cut in 0..body.len() {
            assert!(RemainderVector::decode_body(&body[..cut]).is_err(), "cut at {cut}");
        }
    }
}
