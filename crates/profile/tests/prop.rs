//! Property-based tests for the profile machinery: enumeration-mode
//! containment, remainder soundness, entropy monotonicity.

use msb_profile::attribute::Attribute;
use msb_profile::entropy::EntropyModel;
use msb_profile::hint::HintConstruction;
use msb_profile::matching::{
    enumerate_candidate_keys, has_candidate_assignment, EnumerationMode, MatchConfig,
};
use msb_profile::profile::Profile;
use msb_profile::request::RequestProfile;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn attrs(prefix: &str, n: usize) -> Vec<Attribute> {
    (0..n).map(|i| Attribute::new(prefix, format!("v{i}"))).collect()
}

proptest! {
    /// Strict-mode candidate keys are a subset of exhaustive-mode keys.
    #[test]
    fn strict_subset_of_exhaustive(
        opt_count in 1usize..5,
        beta_idx in 0usize..4,
        owned_mask in 0u32..64,
        noise in 0usize..5,
        seed in any::<u64>(),
    ) {
        let optional = attrs("o", opt_count);
        let beta = (beta_idx % opt_count) + 1;
        prop_assume!(beta <= opt_count);
        let request = RequestProfile::new(Vec::new(), optional.clone(), beta).unwrap();

        let mut owned: Vec<Attribute> = optional
            .iter()
            .enumerate()
            .filter(|(i, _)| owned_mask >> i & 1 == 1)
            .map(|(_, a)| a.clone())
            .collect();
        owned.extend(attrs("noise", noise));
        let user = Profile::from_attributes(owned);

        let mut rng = StdRng::seed_from_u64(seed);
        let sealed = request.try_seal(11, HintConstruction::Cauchy, &mut rng).unwrap();

        let strict = enumerate_candidate_keys(
            user.vector(),
            &sealed.remainder,
            sealed.hint.as_ref(),
            &MatchConfig { mode: EnumerationMode::Strict, max_assignments: 50_000 },
        );
        let exhaustive = enumerate_candidate_keys(
            user.vector(),
            &sealed.remainder,
            sealed.hint.as_ref(),
            &MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 50_000 },
        );
        for k in &strict {
            prop_assert!(
                exhaustive.iter().any(|e| e.key == k.key),
                "strict key missing from exhaustive set"
            );
        }
    }

    /// fast_check never returns false when a key derivation would
    /// succeed, and always agrees with assignment existence.
    #[test]
    fn fast_check_agrees_with_enumeration(
        opt_count in 1usize..5,
        beta_idx in 0usize..4,
        owned_mask in 0u32..64,
        seed in any::<u64>(),
    ) {
        let optional = attrs("o", opt_count);
        let beta = (beta_idx % opt_count) + 1;
        let request = RequestProfile::new(Vec::new(), optional.clone(), beta).unwrap();
        let owned: Vec<Attribute> = optional
            .iter()
            .enumerate()
            .filter(|(i, _)| owned_mask >> i & 1 == 1)
            .map(|(_, a)| a.clone())
            .collect();
        let user = Profile::from_attributes(owned);
        let mut rng = StdRng::seed_from_u64(seed);
        let sealed = request.try_seal(11, HintConstruction::Cauchy, &mut rng).unwrap();
        prop_assert_eq!(
            sealed.remainder.fast_check(user.vector()),
            has_candidate_assignment(user.vector(), &sealed.remainder)
        );
    }

    /// Entropy: observing more values never decreases category entropy
    /// below zero, and uniform distributions maximize it.
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(1u64..100, 1..10)) {
        let mut model = EntropyModel::new();
        for (i, &c) in counts.iter().enumerate() {
            model.observe_n("cat", &format!("v{i}"), c);
        }
        let s = model.attribute_entropy("cat");
        let max = (counts.len() as f64).log2();
        prop_assert!(s >= -1e-12, "entropy must be non-negative: {s}");
        prop_assert!(s <= max + 1e-9, "entropy exceeds log2(n): {s} > {max}");
    }

    /// Profile keys are injective over distinct attribute sets (up to
    /// SHA-256 collisions): different sets give different keys.
    #[test]
    fn distinct_sets_distinct_keys(mask1 in 1u32..256, mask2 in 1u32..256) {
        prop_assume!(mask1 != mask2);
        let pool = attrs("t", 8);
        let pick = |mask: u32| -> Profile {
            Profile::from_attributes(
                pool.iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, a)| a.clone()),
            )
        };
        let p1 = pick(mask1);
        let p2 = pick(mask2);
        prop_assert_ne!(
            p1.vector().profile_key(),
            p2.vector().profile_key()
        );
    }

    /// Sealing is deterministic in the key but randomized in the hint
    /// randomness: the profile key never depends on the RNG.
    #[test]
    fn sealing_key_rng_independent(seed1 in any::<u64>(), seed2 in any::<u64>()) {
        let request = RequestProfile::new(
            attrs("n", 1),
            attrs("o", 3),
            2,
        ).unwrap();
        let s1 = request
            .try_seal(11, HintConstruction::Random, &mut StdRng::seed_from_u64(seed1))
            .unwrap();
        let s2 = request
            .try_seal(11, HintConstruction::Random, &mut StdRng::seed_from_u64(seed2))
            .unwrap();
        prop_assert_eq!(s1.key, s2.key);
        prop_assert_eq!(s1.remainder, s2.remainder);
    }
}
