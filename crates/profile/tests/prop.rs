//! Property-based tests for the profile machinery: enumeration-mode
//! containment, remainder soundness, entropy monotonicity.

use msb_profile::attribute::Attribute;
use msb_profile::entropy::EntropyModel;
use msb_profile::hint::{HintConstruction, HintMatrix};
use msb_profile::matching::parallel::{
    enumerate_assignments_par, enumerate_candidate_keys_with_stats_par, Parallelism,
};
use msb_profile::matching::{
    enumerate_assignments, enumerate_candidate_keys, enumerate_candidate_keys_with_stats,
    has_candidate_assignment, EnumerationMode, MatchConfig,
};
use msb_profile::profile::Profile;
use msb_profile::remainder::RemainderVector;
use msb_profile::request::RequestProfile;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn attrs(prefix: &str, n: usize) -> Vec<Attribute> {
    (0..n).map(|i| Attribute::new(prefix, format!("v{i}"))).collect()
}

proptest! {
    /// Strict-mode candidate keys are a subset of exhaustive-mode keys.
    #[test]
    fn strict_subset_of_exhaustive(
        opt_count in 1usize..5,
        beta_idx in 0usize..4,
        owned_mask in 0u32..64,
        noise in 0usize..5,
        seed in any::<u64>(),
    ) {
        let optional = attrs("o", opt_count);
        let beta = (beta_idx % opt_count) + 1;
        prop_assume!(beta <= opt_count);
        let request = RequestProfile::new(Vec::new(), optional.clone(), beta).unwrap();

        let mut owned: Vec<Attribute> = optional
            .iter()
            .enumerate()
            .filter(|(i, _)| owned_mask >> i & 1 == 1)
            .map(|(_, a)| a.clone())
            .collect();
        owned.extend(attrs("noise", noise));
        let user = Profile::from_attributes(owned);

        let mut rng = StdRng::seed_from_u64(seed);
        let sealed = request.try_seal(11, HintConstruction::Cauchy, &mut rng).unwrap();

        let strict = enumerate_candidate_keys(
            user.vector(),
            &sealed.remainder,
            sealed.hint.as_ref(),
            &MatchConfig { mode: EnumerationMode::Strict, max_assignments: 50_000 },
        );
        let exhaustive = enumerate_candidate_keys(
            user.vector(),
            &sealed.remainder,
            sealed.hint.as_ref(),
            &MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 50_000 },
        );
        for k in &strict {
            prop_assert!(
                exhaustive.iter().any(|e| e.key == k.key),
                "strict key missing from exhaustive set"
            );
        }
    }

    /// fast_check never returns false when a key derivation would
    /// succeed, and always agrees with assignment existence.
    #[test]
    fn fast_check_agrees_with_enumeration(
        opt_count in 1usize..5,
        beta_idx in 0usize..4,
        owned_mask in 0u32..64,
        seed in any::<u64>(),
    ) {
        let optional = attrs("o", opt_count);
        let beta = (beta_idx % opt_count) + 1;
        let request = RequestProfile::new(Vec::new(), optional.clone(), beta).unwrap();
        let owned: Vec<Attribute> = optional
            .iter()
            .enumerate()
            .filter(|(i, _)| owned_mask >> i & 1 == 1)
            .map(|(_, a)| a.clone())
            .collect();
        let user = Profile::from_attributes(owned);
        let mut rng = StdRng::seed_from_u64(seed);
        let sealed = request.try_seal(11, HintConstruction::Cauchy, &mut rng).unwrap();
        prop_assert_eq!(
            sealed.remainder.fast_check(user.vector()),
            has_candidate_assignment(user.vector(), &sealed.remainder)
        );
    }

    /// Entropy: observing more values never decreases category entropy
    /// below zero, and uniform distributions maximize it.
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(1u64..100, 1..10)) {
        let mut model = EntropyModel::new();
        for (i, &c) in counts.iter().enumerate() {
            model.observe_n("cat", &format!("v{i}"), c);
        }
        let s = model.attribute_entropy("cat");
        let max = (counts.len() as f64).log2();
        prop_assert!(s >= -1e-12, "entropy must be non-negative: {s}");
        prop_assert!(s <= max + 1e-9, "entropy exceeds log2(n): {s} > {max}");
    }

    /// Profile keys are injective over distinct attribute sets (up to
    /// SHA-256 collisions): different sets give different keys.
    #[test]
    fn distinct_sets_distinct_keys(mask1 in 1u32..256, mask2 in 1u32..256) {
        prop_assume!(mask1 != mask2);
        let pool = attrs("t", 8);
        let pick = |mask: u32| -> Profile {
            Profile::from_attributes(
                pool.iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, a)| a.clone()),
            )
        };
        let p1 = pick(mask1);
        let p2 = pick(mask2);
        prop_assert_ne!(
            p1.vector().profile_key(),
            p2.vector().profile_key()
        );
    }

    /// Differential: parallel enumeration (1, 2, 4, 8 threads) returns
    /// exactly the sequential candidate-key set — same keys, same order,
    /// same `_with_stats` counters, same truncation — and the parallel
    /// assignment list is the sequential one, for random profiles and
    /// remainder vectors in both enumeration modes.
    #[test]
    fn parallel_enumeration_identical_to_sequential(
        alpha in 0usize..3,
        opt_count in 1usize..5,
        beta_idx in 0usize..4,
        owned_mask in 0u32..256,
        noise in 0usize..8,
        p_idx in 0usize..3,
        cap_idx in 0usize..3,
    ) {
        // Small moduli make remainder collisions (and thus non-trivially
        // shaped search spaces) common.
        let p = [2u64, 3, 11][p_idx];
        let cap = [8usize, 100, 50_000][cap_idx];
        let beta = (beta_idx % opt_count) + 1;
        let request_attrs = attrs("r", alpha + opt_count);
        let mut nec: Vec<_> = request_attrs[..alpha].iter().map(Attribute::hash).collect();
        nec.sort_unstable();
        let mut optional: Vec<_> = request_attrs[alpha..].iter().map(Attribute::hash).collect();
        optional.sort_unstable();
        let rv = RemainderVector::new(p, &nec, &optional, beta);
        let gamma = opt_count - beta;
        let hint = if gamma > 0 {
            Some(HintMatrix::generate(
                &optional,
                beta,
                HintConstruction::Cauchy,
                &mut StdRng::seed_from_u64(owned_mask as u64),
            ))
        } else {
            None
        };

        let mut owned: Vec<Attribute> = request_attrs
            .iter()
            .enumerate()
            .filter(|(i, _)| owned_mask >> i & 1 == 1)
            .map(|(_, a)| a.clone())
            .collect();
        owned.extend(attrs("noise", noise));
        let user = Profile::from_attributes(owned);

        for mode in [EnumerationMode::Strict, EnumerationMode::Exhaustive] {
            let config = MatchConfig { mode, max_assignments: cap };
            let (seq_keys, seq_stats) =
                enumerate_candidate_keys_with_stats(user.vector(), &rv, hint.as_ref(), &config);
            let seq_assignments = enumerate_assignments(user.vector(), &rv, &config);
            for threads in [1usize, 2, 4, 8] {
                let par = Parallelism::new(threads);
                let (par_keys, par_stats) = enumerate_candidate_keys_with_stats_par(
                    user.vector(), &rv, hint.as_ref(), &config, par,
                );
                prop_assert_eq!(&par_keys, &seq_keys, "keys differ: {} threads, {:?}", threads, mode);
                prop_assert_eq!(par_stats, seq_stats, "stats differ: {} threads, {:?}", threads, mode);
                let par_assignments = enumerate_assignments_par(user.vector(), &rv, &config, par);
                prop_assert_eq!(
                    &par_assignments, &seq_assignments,
                    "assignments differ: {} threads, {:?}", threads, mode
                );
            }
        }
    }

    /// Sealing is deterministic in the key but randomized in the hint
    /// randomness: the profile key never depends on the RNG.
    #[test]
    fn sealing_key_rng_independent(seed1 in any::<u64>(), seed2 in any::<u64>()) {
        let request = RequestProfile::new(
            attrs("n", 1),
            attrs("o", 3),
            2,
        ).unwrap();
        let s1 = request
            .try_seal(11, HintConstruction::Random, &mut StdRng::seed_from_u64(seed1))
            .unwrap();
        let s2 = request
            .try_seal(11, HintConstruction::Random, &mut StdRng::seed_from_u64(seed2))
            .unwrap();
        prop_assert_eq!(s1.key, s2.key);
        prop_assert_eq!(s1.remainder, s2.remainder);
    }
}
