//! The canonical, versioned wire codec for every Sealed-Bottle protocol
//! message.
//!
//! Every message that crosses a link — request packages, replies, and
//! persisted dataset records — is encoded by one engine:
//!
//! * [`WireEncode`] / [`WireDecode`] — body-level codec traits. Nested
//!   structures (remainder vectors, hint matrices, dataset users)
//!   implement these and compose.
//! * [`Message`] — the subset of wire types that travel as standalone
//!   frames. Each carries a [`FrameKind`] discriminant and gains
//!   [`Message::encode`] / [`Message::decode`], which wrap the body in
//!   the versioned envelope below.
//! * [`Reader`] / [`Writer`] — the shared cursor primitives. [`Reader`]
//!   borrows the input (no intermediate copies — decoding a frame held
//!   in a [`bytes::Bytes`] never clones the buffer) and reports the
//!   exact byte offset of any failure through [`DecodeError`].
//!
//! # The frame envelope
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "MSBW"
//!      4     1  version (currently 1)
//!      5     1  kind    (FrameKind discriminant)
//!      6     4  payload length, big-endian u32
//!     10     n  payload (message body)
//! ```
//!
//! Decoding is **strict**: unknown versions and kinds are rejected, the
//! declared payload length must match the input exactly, and every
//! message body must consume its payload to the last byte — trailing
//! garbage after a valid frame is an error carrying the offset where it
//! starts. See `docs/WIRE.md` for the per-message body layouts.
//!
//! All integers are big-endian. The format has no self-describing or
//! reflective features on purpose: the codec is the schema, and the
//! golden fixtures under `tests/fixtures/` pin it byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stream;

use bytes::Bytes;

/// The frame magic: "MSBW" (Message-in-a-Sealed-Bottle Wire).
pub const MAGIC: [u8; 4] = *b"MSBW";

/// The current (and only) envelope version.
pub const VERSION: u8 = 1;

/// Size of the frame envelope preceding every message payload.
pub const FRAME_HEADER_LEN: usize = 10;

/// Message discriminants carried in the frame envelope.
///
/// Values are part of the wire format; never reuse or renumber them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// A broadcast request package (Protocols 1–3).
    Request = 0x01,
    /// A unicast reply/confirmation (the acknowledgement set).
    Reply = 0x02,
    /// One persisted synthetic Weibo user record.
    WeiboUser = 0x10,
    /// A whole persisted Weibo dataset (config + users).
    WeiboDataset = 0x11,
    /// Relay service: a client identifying itself (`msb-server`).
    RelayHello = 0x20,
    /// Relay service: a sealed bottle deposited for a recipient's inbox.
    RelayDeposit = 0x21,
    /// Relay service: a poll of the caller's store-and-forward inbox.
    RelayFetch = 0x22,
    /// Relay service: the pending messages drained by a fetch.
    RelayInbox = 0x23,
    /// Relay service: the per-request accept/reject status.
    RelayAck = 0x24,
    /// Relay service: a health/stats query.
    RelayStatsReq = 0x25,
    /// Relay service: the health/stats snapshot.
    RelayStats = 0x26,
    /// Relay service: the full telemetry dump (stats + histograms).
    RelayMetricsDump = 0x27,
    /// Relay service: a telemetry-dump query.
    RelayMetricsReq = 0x28,
}

impl FrameKind {
    /// Parses a kind byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0x01 => Some(FrameKind::Request),
            0x02 => Some(FrameKind::Reply),
            0x10 => Some(FrameKind::WeiboUser),
            0x11 => Some(FrameKind::WeiboDataset),
            0x20 => Some(FrameKind::RelayHello),
            0x21 => Some(FrameKind::RelayDeposit),
            0x22 => Some(FrameKind::RelayFetch),
            0x23 => Some(FrameKind::RelayInbox),
            0x24 => Some(FrameKind::RelayAck),
            0x25 => Some(FrameKind::RelayStatsReq),
            0x26 => Some(FrameKind::RelayStats),
            0x27 => Some(FrameKind::RelayMetricsDump),
            0x28 => Some(FrameKind::RelayMetricsReq),
            _ => None,
        }
    }
}

/// Errors decoding wire data. Offset-bearing variants report the
/// absolute byte position (within the buffer handed to the decoder)
/// where decoding failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input does not start with the frame magic.
    BadMagic,
    /// The envelope version is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte names no known [`FrameKind`].
    UnknownKind(u8),
    /// The frame decoded fine but holds a different message kind than
    /// the caller asked for.
    WrongKind {
        /// The kind the caller expected.
        expected: FrameKind,
        /// The kind found in the envelope.
        found: FrameKind,
    },
    /// The input ended before the field starting at `offset` could be
    /// read.
    Truncated {
        /// Where the unreadable field starts.
        offset: usize,
    },
    /// Bytes remain after a complete, valid message.
    Trailing {
        /// Where the trailing garbage starts.
        offset: usize,
    },
    /// A field held an invalid value.
    Invalid {
        /// Where the offending field starts.
        offset: usize,
        /// What was wrong with it.
        what: &'static str,
    },
    /// The envelope declared a payload longer than the receiver's
    /// configured bound ([`stream::FrameStream`]'s `max_frame_len`).
    /// Raised from the header alone, *before* any payload is buffered —
    /// a hostile length costs the receiver nothing.
    FrameTooLarge {
        /// The total frame size the header declared (envelope + payload).
        declared: usize,
        /// The receiver's configured maximum frame size.
        max: usize,
    },
}

impl DecodeError {
    /// Shifts offset-bearing variants by `base` — used when a body
    /// decoder's relative offsets are reported against the whole frame.
    #[must_use]
    pub fn at_offset(self, base: usize) -> Self {
        match self {
            DecodeError::Truncated { offset } => DecodeError::Truncated { offset: offset + base },
            DecodeError::Trailing { offset } => DecodeError::Trailing { offset: offset + base },
            DecodeError::Invalid { offset, what } => {
                DecodeError::Invalid { offset: offset + base, what }
            }
            other => other,
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad frame magic"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            DecodeError::WrongKind { expected, found } => {
                write!(f, "expected a {expected:?} frame, found {found:?}")
            }
            DecodeError::Truncated { offset } => write!(f, "input truncated at offset {offset}"),
            DecodeError::Trailing { offset } => {
                write!(f, "trailing bytes after a valid message at offset {offset}")
            }
            DecodeError::Invalid { offset, what } => {
                write!(f, "invalid field at offset {offset}: {what}")
            }
            DecodeError::FrameTooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds the {max}-byte bound")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors encoding wire data.
///
/// The encoders themselves are infallible for every message a protocol
/// state machine can construct (lengths are statically bounded well
/// below the envelope's `u32` payload field); only a *composed* message
/// — e.g. a server batching arbitrary client data — can outgrow the
/// envelope, and [`Message::try_encode`] reports that instead of
/// aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The message body does not fit the envelope's u32 length field.
    BodyTooLarge {
        /// The body length that overflowed the field.
        len: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BodyTooLarge { len } => {
                write!(f, "message body of {len} bytes exceeds the u32 envelope length field")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A borrowing, offset-tracking read cursor. Never copies the input.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// The current absolute offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Borrows the next `n` bytes and advances past them.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at the current offset when fewer than
    /// `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { offset: self.pos });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a fixed-size byte array.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when fewer than `N` bytes remain.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        Ok(self.take(N)?.try_into().expect("take returned N bytes"))
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    /// Reads the next byte without consuming it.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn peek_u8(&self) -> Result<u8, DecodeError> {
        if self.remaining() == 0 {
            return Err(DecodeError::Truncated { offset: self.pos });
        }
        Ok(self.data[self.pos])
    }

    /// An [`DecodeError::Invalid`] anchored at `start` (typically the
    /// offset saved before reading the offending field).
    pub fn invalid(&self, start: usize, what: &'static str) -> DecodeError {
        DecodeError::Invalid { offset: start, what }
    }

    /// Strict end-of-input check.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Trailing`] at the current offset when bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() > 0 {
            return Err(DecodeError::Trailing { offset: self.pos });
        }
        Ok(())
    }
}

/// An append-only write cursor; the counterpart of [`Reader`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// An empty writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
}

/// Types with a canonical body encoding.
pub trait WireEncode {
    /// The exact encoded body length in bytes, computed without
    /// encoding. [`WireEncode::encode_body`] asserts this is truthful,
    /// and the simulator's in-memory delivery mode uses it to account
    /// wire bytes without serializing.
    fn encoded_len(&self) -> usize;

    /// Appends the canonical body encoding to `w`.
    fn encode_into(&self, w: &mut Writer);

    /// The canonical body encoding.
    fn encode_body(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        self.encode_into(&mut w);
        debug_assert_eq!(w.len(), self.encoded_len(), "encoded_len out of sync with encode_into");
        w.into_vec()
    }
}

/// Types decodable from their canonical body encoding.
pub trait WireDecode: Sized {
    /// Decodes one value from the reader, leaving it positioned after
    /// the value (composable: callers may decode further fields).
    ///
    /// # Errors
    ///
    /// A [`DecodeError`] locating the failure; decoding is total (no
    /// panics) for arbitrary input.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Decodes a standalone body, requiring the input to be consumed
    /// exactly.
    ///
    /// # Errors
    ///
    /// A [`DecodeError`]; [`DecodeError::Trailing`] when input remains
    /// after a valid value.
    fn decode_body(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(data);
        let v = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// A wire message that travels as a standalone frame.
pub trait Message: WireEncode + WireDecode {
    /// The envelope discriminant for this message type.
    const KIND: FrameKind;

    /// Exact total frame size (envelope + body) without encoding.
    fn frame_len(&self) -> usize {
        FRAME_HEADER_LEN + self.encoded_len()
    }

    /// Encodes the full frame: envelope followed by the body.
    ///
    /// The infallible path for statically-bounded protocol messages.
    ///
    /// # Panics
    ///
    /// Panics if the body exceeds `u32::MAX` bytes — impossible for the
    /// protocol message types, whose field lengths are bounded far
    /// below it. Services composing messages from untrusted or unbounded
    /// data must use [`Message::try_encode`] instead.
    fn encode(&self) -> Vec<u8> {
        self.try_encode().expect("message body exceeds u32::MAX bytes")
    }

    /// Encodes the full frame, reporting an oversized body instead of
    /// panicking — the server-side path, where a composed message must
    /// never be able to abort the process.
    ///
    /// # Errors
    ///
    /// [`EncodeError::BodyTooLarge`] when the body does not fit the
    /// envelope's u32 payload-length field.
    fn try_encode(&self) -> Result<Vec<u8>, EncodeError> {
        let body_len = self.encoded_len();
        let declared =
            u32::try_from(body_len).map_err(|_| EncodeError::BodyTooLarge { len: body_len })?;
        let mut w = Writer::with_capacity(FRAME_HEADER_LEN + body_len);
        w.bytes(&MAGIC);
        w.u8(VERSION);
        w.u8(Self::KIND as u8);
        w.u32(declared);
        self.encode_into(&mut w);
        debug_assert_eq!(w.len(), FRAME_HEADER_LEN + body_len, "encoded_len out of sync");
        Ok(w.into_vec())
    }

    /// Decodes a full frame of this kind, strictly.
    ///
    /// # Errors
    ///
    /// Any envelope error ([`DecodeError::BadMagic`],
    /// [`DecodeError::UnsupportedVersion`], [`DecodeError::UnknownKind`],
    /// [`DecodeError::WrongKind`], length mismatches) or body error,
    /// with offsets reported against `data`.
    fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let (kind, payload) = split_frame(data)?;
        if kind != Self::KIND {
            return Err(DecodeError::WrongKind { expected: Self::KIND, found: kind });
        }
        Self::decode_body(payload).map_err(|e| e.at_offset(FRAME_HEADER_LEN))
    }
}

/// Validates the envelope of `data` and returns its kind and payload
/// slice (zero-copy).
///
/// Strictness: the declared payload length must match the input exactly
/// — a short input is [`DecodeError::Truncated`] (at the input's end),
/// excess input is [`DecodeError::Trailing`] (at the first surplus
/// byte).
///
/// # Errors
///
/// Envelope-level [`DecodeError`]s only; the payload is not parsed.
pub fn split_frame(data: &[u8]) -> Result<(FrameKind, &[u8]), DecodeError> {
    let mut r = Reader::new(data);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let kind_byte = r.u8()?;
    let kind = FrameKind::from_u8(kind_byte).ok_or(DecodeError::UnknownKind(kind_byte))?;
    let declared = r.u32()? as usize;
    if r.remaining() < declared {
        return Err(DecodeError::Truncated { offset: data.len() });
    }
    if r.remaining() > declared {
        return Err(DecodeError::Trailing { offset: FRAME_HEADER_LEN + declared });
    }
    Ok((kind, r.take(declared)?))
}

/// Reads just enough of the envelope to classify a frame (magic,
/// version, kind) without validating its length or payload — the
/// dispatch primitive for message handlers.
///
/// # Errors
///
/// [`DecodeError::Truncated`], [`DecodeError::BadMagic`],
/// [`DecodeError::UnsupportedVersion`] or [`DecodeError::UnknownKind`].
pub fn peek_kind(data: &[u8]) -> Result<FrameKind, DecodeError> {
    let mut r = Reader::new(data);
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let kind_byte = r.u8()?;
    FrameKind::from_u8(kind_byte).ok_or(DecodeError::UnknownKind(kind_byte))
}

/// A validated frame view over shared bytes: the header fields plus a
/// zero-copy handle on the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message kind from the envelope.
    pub kind: FrameKind,
    /// The payload, sharing `bytes`' allocation.
    pub payload: Bytes,
}

impl Frame {
    /// Parses the envelope of `bytes` and returns a view whose payload
    /// shares the input allocation (no copy).
    ///
    /// # Errors
    ///
    /// The same envelope errors as [`split_frame`].
    pub fn parse(bytes: &Bytes) -> Result<Frame, DecodeError> {
        let (kind, payload) = split_frame(bytes)?;
        debug_assert_eq!(payload.len(), bytes.len() - FRAME_HEADER_LEN);
        Ok(Frame { kind, payload: bytes.slice(FRAME_HEADER_LEN..) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy message for engine-level tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ping {
        seq: u64,
        note: Vec<u8>,
    }

    impl WireEncode for Ping {
        fn encoded_len(&self) -> usize {
            8 + 2 + self.note.len()
        }
        fn encode_into(&self, w: &mut Writer) {
            w.u64(self.seq);
            w.u16(self.note.len() as u16);
            w.bytes(&self.note);
        }
    }

    impl WireDecode for Ping {
        fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            let seq = r.u64()?;
            let n = r.u16()? as usize;
            let note = r.take(n)?.to_vec();
            Ok(Ping { seq, note })
        }
    }

    impl Message for Ping {
        // Test-only: reuse a real discriminant.
        const KIND: FrameKind = FrameKind::Request;
    }

    fn ping() -> Ping {
        Ping { seq: 7, note: b"hello".to_vec() }
    }

    #[test]
    fn frame_roundtrip() {
        let p = ping();
        let frame = p.encode();
        assert_eq!(frame.len(), p.frame_len());
        assert_eq!(&frame[..4], b"MSBW");
        assert_eq!(frame[4], VERSION);
        assert_eq!(frame[5], FrameKind::Request as u8);
        assert_eq!(Ping::decode(&frame).unwrap(), p);
    }

    #[test]
    fn envelope_rejections_carry_positions() {
        let p = ping();
        let frame = p.encode();

        assert_eq!(Ping::decode(b"no"), Err(DecodeError::Truncated { offset: 0 }));
        assert_eq!(Ping::decode(b"nope"), Err(DecodeError::BadMagic));
        assert_eq!(Ping::decode(b"XXXXXXXXXXXX"), Err(DecodeError::BadMagic));

        let mut wrong_version = frame.clone();
        wrong_version[4] = 9;
        assert_eq!(Ping::decode(&wrong_version), Err(DecodeError::UnsupportedVersion(9)));

        let mut unknown_kind = frame.clone();
        unknown_kind[5] = 0xEE;
        assert_eq!(Ping::decode(&unknown_kind), Err(DecodeError::UnknownKind(0xEE)));

        let mut wrong_kind = frame.clone();
        wrong_kind[5] = FrameKind::Reply as u8;
        assert_eq!(
            Ping::decode(&wrong_kind),
            Err(DecodeError::WrongKind { expected: FrameKind::Request, found: FrameKind::Reply })
        );

        let mut truncated = frame.clone();
        truncated.pop();
        assert_eq!(
            Ping::decode(&truncated),
            Err(DecodeError::Truncated { offset: truncated.len() })
        );

        let mut trailing = frame.clone();
        trailing.push(0);
        assert_eq!(Ping::decode(&trailing), Err(DecodeError::Trailing { offset: frame.len() }));
    }

    #[test]
    fn body_error_offsets_are_frame_absolute() {
        // A body whose declared note length exceeds the payload: the
        // inner Truncated offset must be reported against the frame.
        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.u8(VERSION);
        w.u8(FrameKind::Request as u8);
        w.u32(10); // payload: seq(8) + note_len(2), note truncated away
        w.u64(1);
        w.u16(5); // claims 5 note bytes, none present
        let bytes = w.into_vec();
        assert_eq!(
            Ping::decode(&bytes),
            Err(DecodeError::Truncated { offset: FRAME_HEADER_LEN + 10 })
        );
    }

    #[test]
    fn body_trailing_rejected() {
        // Envelope length consistent, but the body does not consume the
        // whole payload.
        let p = ping();
        let mut body = p.encode_body();
        body.push(0xAA);
        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.u8(VERSION);
        w.u8(FrameKind::Request as u8);
        w.u32(body.len() as u32);
        w.bytes(&body);
        let bytes = w.into_vec();
        let expect = FRAME_HEADER_LEN + p.encoded_len();
        assert_eq!(Ping::decode(&bytes), Err(DecodeError::Trailing { offset: expect }));
    }

    #[test]
    fn try_encode_matches_encode_and_reports_oversize() {
        let p = ping();
        assert_eq!(p.try_encode().unwrap(), p.encode());

        // A message whose body cannot fit the u32 length field: lie in
        // encoded_len. try_encode must fail before encode_into runs.
        struct Bloated;
        impl WireEncode for Bloated {
            fn encoded_len(&self) -> usize {
                u32::MAX as usize + 1
            }
            fn encode_into(&self, _w: &mut Writer) {
                unreachable!("oversize must be rejected before the body is written");
            }
        }
        impl WireDecode for Bloated {
            fn decode_from(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                unreachable!()
            }
        }
        impl Message for Bloated {
            const KIND: FrameKind = FrameKind::Request;
        }
        assert_eq!(
            Bloated.try_encode(),
            Err(EncodeError::BodyTooLarge { len: u32::MAX as usize + 1 })
        );
        let msg = EncodeError::BodyTooLarge { len: 5 }.to_string();
        assert!(msg.contains("5 bytes"), "unhelpful message: {msg}");
    }

    #[test]
    fn peek_kind_reads_header_only() {
        let frame = ping().encode();
        assert_eq!(peek_kind(&frame), Ok(FrameKind::Request));
        // Truncated payload is fine for peeking…
        assert_eq!(peek_kind(&frame[..6]), Ok(FrameKind::Request));
        // …but a truncated header is not.
        assert_eq!(peek_kind(&frame[..5]), Err(DecodeError::Truncated { offset: 5 }));
    }

    #[test]
    fn frame_parse_is_zero_copy() {
        let p = ping();
        let bytes = Bytes::from(p.encode());
        let frame = Frame::parse(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.payload.len(), p.encoded_len());
        assert_eq!(Ping::decode_body(&frame.payload).unwrap(), p);
    }

    #[test]
    fn reader_reports_offsets() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u16().unwrap(), 0x0102);
        assert_eq!(r.offset(), 2);
        assert_eq!(r.u16(), Err(DecodeError::Truncated { offset: 2 }));
        assert_eq!(r.u8().unwrap(), 3);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn writer_reader_all_widths() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0102_0304_0506_0708);
        w.bytes(b"tail");
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.take(4).unwrap(), b"tail");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn decode_error_display_mentions_offset() {
        let e = DecodeError::Invalid { offset: 17, what: "kind" };
        assert!(e.to_string().contains("17"));
        assert!(DecodeError::Trailing { offset: 3 }.to_string().contains("3"));
    }

    #[test]
    fn at_offset_shifts_only_positional_variants() {
        assert_eq!(
            DecodeError::Truncated { offset: 2 }.at_offset(10),
            DecodeError::Truncated { offset: 12 }
        );
        assert_eq!(DecodeError::BadMagic.at_offset(10), DecodeError::BadMagic);
    }
}
