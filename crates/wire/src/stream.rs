//! Incremental reframing of an MSBW byte stream.
//!
//! TCP delivers bytes, not frames: a single `read` can return half a
//! frame, three frames, or a frame boundary split anywhere — including
//! mid-magic. [`FrameStream`] turns that arbitrary chunking back into
//! the strict frames the rest of the crate decodes, while holding two
//! guarantees a network-facing receiver needs:
//!
//! 1. **Bounded allocation.** The buffer only ever holds bytes that
//!    were actually received, and a frame whose header declares a
//!    total length above the configured `max_frame_len` is rejected
//!    with [`DecodeError::FrameTooLarge`] the moment the 10-byte
//!    header is complete — *before* any payload is buffered. A hostile
//!    peer cannot make the receiver reserve memory by declaring a
//!    length.
//! 2. **Eager envelope validation.** Magic, version, and kind are
//!    checked as soon as their bytes arrive (a wrong magic byte is
//!    detected from the very first byte), so garbage on the wire is
//!    caught immediately rather than after `max_frame_len` bytes of
//!    buffering.
//!
//! Every error is **connection-fatal**: once `push` or `next_frame`
//! returns `Err`, the stream position is no longer trustworthy
//! (resynchronizing inside a binary stream would let an attacker craft
//! frame-in-frame payloads). Drop the stream — and the connection —
//! and let the peer reconnect. The byte-level contract is specified in
//! `docs/WIRE.md` §9.
//!
//! ```
//! use msb_wire::stream::FrameStream;
//!
//! // A 10-byte header declaring a 2-byte payload, split awkwardly.
//! let frame = [b'M', b'S', b'B', b'W', 1, 0x01, 0, 0, 0, 2, 0xAA, 0xBB];
//! let mut s = FrameStream::new(1024);
//! s.push(&frame[..7]).unwrap();
//! assert!(s.next_frame().unwrap().is_none()); // header incomplete
//! s.push(&frame[7..]).unwrap();
//! let out = s.next_frame().unwrap().unwrap();
//! assert_eq!(&out[..], &frame[..]);
//! ```

use bytes::Bytes;

use crate::{DecodeError, FrameKind, FRAME_HEADER_LEN, MAGIC, VERSION};

/// Reassembles strict MSBW frames from arbitrarily-chunked stream
/// input. See the [module docs](self) for the allocation and
/// error-handling contract.
#[derive(Debug)]
pub struct FrameStream {
    /// Received-but-unconsumed bytes. `buf[start..]` is live; the
    /// consumed prefix is compacted away on the next `push`.
    buf: Vec<u8>,
    start: usize,
    max_frame_len: usize,
}

impl FrameStream {
    /// Creates a reframer that rejects any frame whose *total* size
    /// (envelope plus payload) exceeds `max_frame_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `max_frame_len < FRAME_HEADER_LEN` — such a bound
    /// would reject every frame, including empty-payload ones, which
    /// is never an intentional configuration.
    pub fn new(max_frame_len: usize) -> Self {
        assert!(
            max_frame_len >= FRAME_HEADER_LEN,
            "max_frame_len {max_frame_len} cannot hold even an empty frame ({FRAME_HEADER_LEN} bytes)"
        );
        FrameStream { buf: Vec::new(), start: 0, max_frame_len }
    }

    /// The configured total-frame-size bound.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame_len
    }

    /// Bytes received but not yet returned as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Appends a chunk read from the stream and validates as much of
    /// the pending frame's envelope as has arrived.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadMagic`], [`DecodeError::UnsupportedVersion`]
    /// or [`DecodeError::UnknownKind`] when the pending envelope bytes
    /// are invalid, and [`DecodeError::FrameTooLarge`] when a complete
    /// header declares a frame above the bound. All errors are
    /// connection-fatal; discard the stream.
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), DecodeError> {
        // Compact the consumed prefix before growing, so the buffer's
        // high-water mark tracks max_frame_len + one read, not the
        // total bytes ever received.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
        self.check_pending_envelope()
    }

    /// Extracts the next complete frame, if one is buffered.
    ///
    /// The returned [`Bytes`] is the full frame — envelope and payload
    /// — ready for [`Frame::parse`](crate::Frame::parse) or a typed
    /// [`Message::decode`](crate::Message::decode). `Ok(None)` means
    /// more input is needed.
    ///
    /// # Errors
    ///
    /// The same envelope errors as [`push`](Self::push) — re-checked
    /// here so that after popping one frame, a hostile header already
    /// sitting behind it is rejected without waiting for more input.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, DecodeError> {
        self.check_pending_envelope()?;
        let avail = &self.buf[self.start..];
        if avail.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let payload_len = u32::from_be_bytes([avail[6], avail[7], avail[8], avail[9]]) as usize;
        let total = FRAME_HEADER_LEN + payload_len;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = Bytes::copy_from_slice(&avail[..total]);
        self.start += total;
        Ok(Some(frame))
    }

    /// Validates whatever prefix of the pending frame's envelope has
    /// arrived: magic byte-by-byte, then version, kind, and finally
    /// the declared length against `max_frame_len`.
    fn check_pending_envelope(&self) -> Result<(), DecodeError> {
        let avail = &self.buf[self.start..];
        let magic_have = avail.len().min(MAGIC.len());
        if avail[..magic_have] != MAGIC[..magic_have] {
            return Err(DecodeError::BadMagic);
        }
        if avail.len() >= 5 && avail[4] != VERSION {
            return Err(DecodeError::UnsupportedVersion(avail[4]));
        }
        if avail.len() >= 6 && FrameKind::from_u8(avail[5]).is_none() {
            return Err(DecodeError::UnknownKind(avail[5]));
        }
        if avail.len() >= FRAME_HEADER_LEN {
            let payload_len = u32::from_be_bytes([avail[6], avail[7], avail[8], avail[9]]) as usize;
            let declared = FRAME_HEADER_LEN + payload_len;
            if declared > self.max_frame_len {
                return Err(DecodeError::FrameTooLarge { declared, max: self.max_frame_len });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        v.extend_from_slice(&MAGIC);
        v.push(VERSION);
        v.push(kind);
        v.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn whole_frame_roundtrips() {
        let f = frame(0x01, b"hello");
        let mut s = FrameStream::new(1024);
        s.push(&f).unwrap();
        assert_eq!(&s.next_frame().unwrap().unwrap()[..], &f[..]);
        assert_eq!(s.next_frame().unwrap(), None);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_and_coalesced() {
        let frames = [frame(0x01, b"a"), frame(0x02, b""), frame(0x10, &[7; 300])];
        let stream: Vec<u8> = frames.concat();

        // One byte per push.
        let mut s = FrameStream::new(1024);
        let mut out = Vec::new();
        for &b in &stream {
            s.push(&[b]).unwrap();
            while let Some(f) = s.next_frame().unwrap() {
                out.push(f.to_vec());
            }
        }
        assert_eq!(out, frames.to_vec());

        // All frames in one push.
        let mut s = FrameStream::new(1024);
        s.push(&stream).unwrap();
        let mut out = Vec::new();
        while let Some(f) = s.next_frame().unwrap() {
            out.push(f.to_vec());
        }
        assert_eq!(out, frames.to_vec());
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn hostile_declared_length_rejected_before_buffering() {
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&MAGIC);
        hdr.push(VERSION);
        hdr.push(0x01);
        hdr.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut s = FrameStream::new(4096);
        assert_eq!(
            s.push(&hdr),
            Err(DecodeError::FrameTooLarge {
                declared: FRAME_HEADER_LEN + u32::MAX as usize,
                max: 4096,
            })
        );
        // Only the 10 header bytes were ever buffered — the declared
        // length reserved nothing.
        assert!(s.buf.capacity() < 4096, "capacity {} not bounded", s.buf.capacity());
    }

    #[test]
    fn hostile_length_behind_a_valid_frame() {
        let good = frame(0x01, b"ok");
        let mut bad = Vec::new();
        bad.extend_from_slice(&MAGIC);
        bad.push(VERSION);
        bad.push(0x01);
        bad.extend_from_slice(&0x0001_0000u32.to_be_bytes());
        let mut s = FrameStream::new(64);
        // push sees only the good frame's header first — fine — but
        // after popping it, the hostile header is pending.
        let mut both = good.clone();
        both.extend_from_slice(&bad);
        s.push(&both).unwrap();
        assert_eq!(&s.next_frame().unwrap().unwrap()[..], &good[..]);
        assert_eq!(
            s.next_frame(),
            Err(DecodeError::FrameTooLarge { declared: FRAME_HEADER_LEN + 0x0001_0000, max: 64 })
        );
    }

    #[test]
    fn garbage_magic_detected_from_first_byte() {
        let mut s = FrameStream::new(1024);
        assert_eq!(s.push(b"X"), Err(DecodeError::BadMagic));

        let mut s = FrameStream::new(1024);
        s.push(b"MS").unwrap(); // valid prefix so far
        assert_eq!(s.push(b"BX"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_and_kind_detected_eagerly() {
        let mut s = FrameStream::new(1024);
        s.push(&MAGIC).unwrap();
        assert_eq!(s.push(&[9]), Err(DecodeError::UnsupportedVersion(9)));

        let mut s = FrameStream::new(1024);
        s.push(&MAGIC).unwrap();
        s.push(&[VERSION]).unwrap();
        assert_eq!(s.push(&[0xEE]), Err(DecodeError::UnknownKind(0xEE)));
    }

    #[test]
    fn exact_bound_is_accepted() {
        let f = frame(0x01, &[1; 22]); // total = 32
        let mut s = FrameStream::new(32);
        s.push(&f).unwrap();
        assert_eq!(&s.next_frame().unwrap().unwrap()[..], &f[..]);

        let f = frame(0x01, &[1; 23]); // total = 33
        let mut s = FrameStream::new(32);
        assert_eq!(s.push(&f), Err(DecodeError::FrameTooLarge { declared: 33, max: 32 }));
    }

    #[test]
    #[should_panic(expected = "cannot hold even an empty frame")]
    fn bound_below_header_len_panics() {
        let _ = FrameStream::new(FRAME_HEADER_LEN - 1);
    }

    #[test]
    fn consumed_prefix_is_compacted() {
        let f = frame(0x01, &[0; 100]);
        let mut s = FrameStream::new(256);
        for _ in 0..50 {
            s.push(&f).unwrap();
            assert!(s.next_frame().unwrap().is_some());
        }
        // 50 frames of 110 bytes passed through; the buffer never held
        // more than ~one frame at a time.
        assert!(s.buf.capacity() < 4 * f.len(), "capacity {} grew unboundedly", s.buf.capacity());
    }
}
