//! Property tests for the stream reframer ([`msb_wire::stream`]):
//! however a frame sequence is cut into TCP-ish chunks — at every byte
//! boundary, coalesced, or anywhere in between — the reframer must
//! yield exactly the original frames; and however hostile the input,
//! it must fail fast with a bounded buffer.

use bytes::Bytes;
use msb_wire::stream::FrameStream;
use msb_wire::{DecodeError, FrameKind, FRAME_HEADER_LEN, MAGIC, VERSION};
use proptest::prelude::*;

const KINDS: [FrameKind; 11] = [
    FrameKind::Request,
    FrameKind::Reply,
    FrameKind::WeiboUser,
    FrameKind::WeiboDataset,
    FrameKind::RelayHello,
    FrameKind::RelayDeposit,
    FrameKind::RelayFetch,
    FrameKind::RelayInbox,
    FrameKind::RelayAck,
    FrameKind::RelayStatsReq,
    FrameKind::RelayStats,
];

const MAX: usize = 4096;

fn frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    f.extend_from_slice(&MAGIC);
    f.push(VERSION);
    f.push(kind as u8);
    f.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    f.extend_from_slice(payload);
    f
}

/// Pairs each payload with a kind draw: (frames as independent byte
/// vectors, their concatenation).
fn build(payloads: &[Vec<u8>], kinds: &[prop::sample::Index]) -> (Vec<Vec<u8>>, Vec<u8>) {
    let encoded: Vec<Vec<u8>> = payloads
        .iter()
        .zip(kinds.iter().cycle())
        .map(|(payload, kind)| frame(KINDS[kind.index(KINDS.len())], payload))
        .collect();
    let wire: Vec<u8> = encoded.iter().flatten().copied().collect();
    (encoded, wire)
}

fn drain(stream: &mut FrameStream) -> Vec<Bytes> {
    let mut out = Vec::new();
    while let Some(f) = stream.next_frame().expect("well-formed input") {
        out.push(f);
    }
    out
}

proptest! {
    /// Cut the byte stream at arbitrary positions: the reframed
    /// sequence equals the original regardless of chunking.
    #[test]
    fn arbitrary_cuts_reassemble_exactly(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..6),
        kinds in proptest::collection::vec(any::<prop::sample::Index>(), 1..2),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let (encoded, wire) = build(&payloads, &kinds);
        let mut cut_points: Vec<usize> = cuts.iter().map(|c| c.index(wire.len())).collect();
        cut_points.sort_unstable();
        cut_points.dedup();

        let mut stream = FrameStream::new(MAX);
        let mut got = Vec::new();
        let mut prev = 0;
        for &cut in &cut_points {
            stream.push(&wire[prev..cut]).expect("valid prefix");
            got.extend(drain(&mut stream));
            prev = cut;
        }
        stream.push(&wire[prev..]).expect("valid tail");
        got.extend(drain(&mut stream));

        prop_assert_eq!(got.len(), encoded.len());
        for (g, e) in got.iter().zip(&encoded) {
            prop_assert_eq!(g.as_ref(), e.as_slice());
        }
        prop_assert_eq!(stream.buffered(), 0);
    }

    /// The worst chunking of all — one byte at a time — exercises
    /// every split boundary in every frame.
    #[test]
    fn byte_at_a_time_reassembles_exactly(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 1..4),
        kinds in proptest::collection::vec(any::<prop::sample::Index>(), 2..3),
    ) {
        let (encoded, wire) = build(&payloads, &kinds);
        let mut stream = FrameStream::new(MAX);
        let mut got = Vec::new();
        for byte in &wire {
            stream.push(std::slice::from_ref(byte)).expect("valid byte");
            got.extend(drain(&mut stream));
        }
        prop_assert_eq!(got.len(), encoded.len());
        for (g, e) in got.iter().zip(&encoded) {
            prop_assert_eq!(g.as_ref(), e.as_slice());
        }
    }

    /// Everything in one push coalesces to the same result.
    #[test]
    fn coalesced_push_reassembles_exactly(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..6),
        kinds in proptest::collection::vec(any::<prop::sample::Index>(), 3..4),
    ) {
        let (encoded, wire) = build(&payloads, &kinds);
        let mut stream = FrameStream::new(MAX);
        stream.push(&wire).expect("valid stream");
        let got = drain(&mut stream);
        prop_assert_eq!(got.len(), encoded.len());
        for (g, e) in got.iter().zip(&encoded) {
            prop_assert_eq!(g.as_ref(), e.as_slice());
        }
    }

    /// A stream that stops mid-frame yields every complete frame and
    /// holds exactly the residual bytes — no error, no invention.
    #[test]
    fn truncated_tail_retains_partial_frame(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..5),
        kinds in proptest::collection::vec(any::<prop::sample::Index>(), 1..2),
        keep in any::<prop::sample::Index>(),
    ) {
        let (encoded, wire) = build(&payloads, &kinds);
        let last_len = encoded.last().expect("at least one frame").len();
        let body = wire.len() - last_len;
        // Keep a strict prefix of the final frame.
        let cut = body + keep.index(last_len);

        let mut stream = FrameStream::new(MAX);
        stream.push(&wire[..cut]).expect("valid prefix");
        let got = drain(&mut stream);
        prop_assert_eq!(got.len(), encoded.len() - 1);
        prop_assert_eq!(stream.buffered(), cut - body);
    }

    /// Garbage that deviates from the envelope is rejected at the
    /// first bad byte — pushing a frame's worth of noise never
    /// silently buffers.
    #[test]
    fn garbage_prefix_is_rejected_eagerly(
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        // Force the first byte off the magic so the input is
        // unambiguously garbage.
        let mut garbage = garbage;
        if garbage[0] == MAGIC[0] {
            garbage[0] ^= 0xFF;
        }
        let mut stream = FrameStream::new(MAX);
        let err = stream.push(&garbage).expect_err("garbage must be rejected");
        prop_assert!(matches!(err, DecodeError::BadMagic | DecodeError::Invalid { .. }));
    }

    /// A hostile declared length is rejected from the ten header bytes
    /// alone, and the buffer never grows toward the declared size.
    #[test]
    fn hostile_declared_length_never_allocates(
        declared in (MAX as u32 + 1)..u32::MAX,
        kind in any::<prop::sample::Index>(),
    ) {
        let mut header = frame(KINDS[kind.index(KINDS.len())], &[]);
        let len_at = FRAME_HEADER_LEN - 4;
        header[len_at..FRAME_HEADER_LEN].copy_from_slice(&declared.to_be_bytes());

        let mut stream = FrameStream::new(MAX);
        let err = stream.push(&header[..FRAME_HEADER_LEN]).expect_err("must reject from header");
        prop_assert!(matches!(
            err,
            DecodeError::FrameTooLarge { declared: d, max }
                if d == declared as usize + FRAME_HEADER_LEN && max == MAX
        ));
        // The buffer holds at most the bytes we pushed — nothing was
        // pre-reserved for the declared body.
        prop_assert!(stream.buffered() <= FRAME_HEADER_LEN);
    }
}
