//! Vicinity regions and the intersection threshold Θ
//! (paper §III-D-2, Eq. 16).

use crate::hex::{LatticeConfig, LatticePoint};
use msb_profile::attribute::AttributeHash;

/// A user's vicinity region: the lattice points within range `D` of their
/// snapped location, with pre-computed hashes.
///
/// # Example
///
/// ```
/// use msb_lattice::{LatticeConfig, VicinityRegion};
///
/// let cfg = LatticeConfig::new((0.0, 0.0), 10.0);
/// let region = VicinityRegion::around(&cfg, (12.0, 7.0), 30.0);
/// assert!(region.len() > 1);
/// // Θ = 9/19-style threshold from the paper's example:
/// let beta = region.required_shared(9.0 / 19.0);
/// assert!(beta >= 1 && beta <= region.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VicinityRegion {
    center: LatticePoint,
    points: Vec<LatticePoint>,
    hashes: Vec<AttributeHash>,
    range: f64,
}

impl VicinityRegion {
    /// Builds the region around a raw location with search range `D`.
    pub fn around(cfg: &LatticeConfig, location: (f64, f64), range: f64) -> Self {
        let center = cfg.snap(location);
        Self::around_point(cfg, center, range)
    }

    /// Builds the region around an already-snapped lattice point.
    pub fn around_point(cfg: &LatticeConfig, center: LatticePoint, range: f64) -> Self {
        let points = cfg.points_within(center, range);
        let mut hashes: Vec<AttributeHash> = points.iter().map(|&p| cfg.point_hash(p)).collect();
        hashes.sort_unstable();
        VicinityRegion { center, points, hashes, range }
    }

    /// The snapped center point.
    pub fn center(&self) -> LatticePoint {
        self.center
    }

    /// The region's lattice points, sorted by `(u1, u2)`.
    pub fn points(&self) -> &[LatticePoint] {
        &self.points
    }

    /// The region's point hashes, sorted — ready to use as the optional
    /// block of a fuzzy request.
    pub fn hashes(&self) -> &[AttributeHash] {
        &self.hashes
    }

    /// The search range `D`.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Number of lattice points in the region.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the region is empty (never: it always contains its center).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of shared lattice points with another region —
    /// `|V_i ∩ V_k|`.
    pub fn shared_points(&self, other: &VicinityRegion) -> usize {
        let mine = &self.points;
        other.points.iter().filter(|p| mine.binary_search(p).is_ok()).count()
    }

    /// The achieved ratio θ_k = |V_i ∩ V_k| / |V_k| from Eq. 16, taking
    /// `self` as the *candidate's* region `V_k`.
    pub fn intersection_ratio(&self, initiator: &VicinityRegion) -> f64 {
        self.shared_points(initiator) as f64 / self.len() as f64
    }

    /// Converts a threshold Θ into the minimum shared-point count β for a
    /// fuzzy request over this region's points: β = ⌈Θ·|V|⌉ (at least 1).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < theta <= 1`.
    pub fn required_shared(&self, theta: f64) -> usize {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        ((theta * self.len() as f64).ceil() as usize).max(1)
    }

    /// Whether this region (as candidate `V_k`) satisfies Eq. 16 against
    /// the initiator's region at threshold Θ.
    pub fn in_vicinity_of(&self, initiator: &VicinityRegion, theta: f64) -> bool {
        self.intersection_ratio(initiator) >= theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LatticeConfig {
        LatticeConfig::new((0.0, 0.0), 10.0)
    }

    #[test]
    fn identical_locations_full_overlap() {
        let c = cfg();
        let a = VicinityRegion::around(&c, (0.0, 0.0), 30.0);
        let b = VicinityRegion::around(&c, (1.0, -1.0), 30.0); // same cell
        assert_eq!(a.shared_points(&b), a.len());
        assert!((b.intersection_ratio(&a) - 1.0).abs() < 1e-12);
        assert!(b.in_vicinity_of(&a, 1.0));
    }

    #[test]
    fn overlap_decreases_with_distance() {
        let c = cfg();
        let a = VicinityRegion::around(&c, (0.0, 0.0), 30.0);
        let near = VicinityRegion::around(&c, (10.0, 0.0), 30.0);
        let far = VicinityRegion::around(&c, (50.0, 0.0), 30.0);
        let very_far = VicinityRegion::around(&c, (200.0, 0.0), 30.0);
        assert!(a.shared_points(&near) > a.shared_points(&far));
        assert_eq!(a.shared_points(&very_far), 0);
    }

    #[test]
    fn paper_example_19_points() {
        // D = 3d in the paper's Fig. 3 walk-through... our shells give 19
        // points at 2d; the paper's red region uses a different D/d ratio
        // but the same Θ logic. Verify the Θ = 9/19 arithmetic on a
        // 19-point region.
        let c = cfg();
        let region = VicinityRegion::around(&c, (0.0, 0.0), 20.0);
        assert_eq!(region.len(), 19);
        assert_eq!(region.required_shared(9.0 / 19.0), 9);
    }

    #[test]
    fn symmetric_equal_ranges() {
        // Equal-range regions share symmetrically.
        let c = cfg();
        let a = VicinityRegion::around(&c, (0.0, 0.0), 25.0);
        let b = VicinityRegion::around(&c, (20.0, 10.0), 25.0);
        assert_eq!(a.shared_points(&b), b.shared_points(&a));
    }

    #[test]
    fn hashes_sorted_and_unique() {
        let c = cfg();
        let r = VicinityRegion::around(&c, (5.0, 5.0), 40.0);
        assert!(r.hashes().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.hashes().len(), r.len());
    }

    #[test]
    fn required_shared_bounds() {
        let c = cfg();
        let r = VicinityRegion::around(&c, (0.0, 0.0), 10.0); // 7 points
        assert_eq!(r.required_shared(1.0), 7);
        assert_eq!(r.required_shared(0.001), 1);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_zero_rejected() {
        let c = cfg();
        let r = VicinityRegion::around(&c, (0.0, 0.0), 10.0);
        let _ = r.required_shared(0.0);
    }
}
