//! Dynamic (location-derived) keys and location-bound static attributes
//! (paper §III-D-3).
//!
//! The hash of a user's sorted vicinity lattice points is their *dynamic
//! profile key*: it changes as they move. Hashing each static attribute
//! together with the current dynamic key makes the resulting attribute
//! hashes location-specific, which defeats global dictionary
//! pre-computation: an adversary's dictionary built at one location is
//! useless at another.

use crate::vicinity::VicinityRegion;
use msb_crypto::sha256::Sha256;
use msb_profile::attribute::{Attribute, AttributeHash};
use msb_profile::profile::{ProfileKey, ProfileVector};

/// A dynamic key derived from a vicinity region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicKey(ProfileKey);

impl DynamicKey {
    /// Derives the dynamic key: the profile key of the region's sorted
    /// lattice-point hashes.
    pub fn from_region(region: &VicinityRegion) -> Self {
        let vector = ProfileVector::from_hashes(region.hashes().iter().copied());
        DynamicKey(vector.profile_key())
    }

    /// The underlying 256-bit key.
    pub fn as_profile_key(&self) -> &ProfileKey {
        &self.0
    }

    /// Binds a static attribute to this dynamic key:
    /// `H(attribute ‖ K_dyn)`. Users at different locations produce
    /// completely different hashes for the same static attribute.
    pub fn bind_attribute(&self, attr: &Attribute) -> AttributeHash {
        attr.hash_bound(self.0.as_bytes())
    }

    /// Binds a whole profile, returning the sorted bound-hash vector.
    pub fn bind_profile<'a>(
        &self,
        attrs: impl IntoIterator<Item = &'a Attribute>,
    ) -> ProfileVector {
        ProfileVector::from_hashes(attrs.into_iter().map(|a| self.bind_attribute(a)))
    }

    /// A per-epoch variant: mixes a coarse time epoch into the key so
    /// bound hashes also rotate with time (an extension the paper's
    /// "temporal privacy" discussion motivates).
    pub fn with_epoch(&self, epoch: u64) -> DynamicKey {
        let digest = Sha256::digest_parts(&[self.0.as_bytes(), &epoch.to_be_bytes()]);
        DynamicKey(ProfileKey::from_hashes(&[AttributeHash::from_bytes(digest)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::LatticeConfig;

    fn cfg() -> LatticeConfig {
        LatticeConfig::new((0.0, 0.0), 10.0)
    }

    #[test]
    fn same_region_same_key() {
        let c = cfg();
        let r1 = VicinityRegion::around(&c, (0.0, 0.0), 20.0);
        let r2 = VicinityRegion::around(&c, (1.0, 1.0), 20.0); // same cell
        assert_eq!(DynamicKey::from_region(&r1), DynamicKey::from_region(&r2));
    }

    #[test]
    fn different_location_different_key() {
        let c = cfg();
        let r1 = VicinityRegion::around(&c, (0.0, 0.0), 20.0);
        let r2 = VicinityRegion::around(&c, (100.0, 0.0), 20.0);
        assert_ne!(DynamicKey::from_region(&r1), DynamicKey::from_region(&r2));
    }

    #[test]
    fn bound_attributes_location_specific() {
        let c = cfg();
        let here = DynamicKey::from_region(&VicinityRegion::around(&c, (0.0, 0.0), 20.0));
        let there = DynamicKey::from_region(&VicinityRegion::around(&c, (500.0, 0.0), 20.0));
        let attr = Attribute::new("interest", "jazz");
        assert_ne!(here.bind_attribute(&attr), there.bind_attribute(&attr));
        // And differs from the unbound hash.
        assert_ne!(here.bind_attribute(&attr), attr.hash());
    }

    #[test]
    fn two_users_same_cell_agree_on_bound_hashes() {
        // The property matching relies on: co-located users derive equal
        // bound hashes for equal attributes.
        let c = cfg();
        let alice = DynamicKey::from_region(&VicinityRegion::around(&c, (2.0, 1.0), 20.0));
        let bob = DynamicKey::from_region(&VicinityRegion::around(&c, (-1.0, 2.0), 20.0));
        let attr = Attribute::new("interest", "go");
        assert_eq!(alice.bind_attribute(&attr), bob.bind_attribute(&attr));
    }

    #[test]
    fn bind_profile_sorted() {
        let c = cfg();
        let key = DynamicKey::from_region(&VicinityRegion::around(&c, (0.0, 0.0), 20.0));
        let attrs = [Attribute::new("a", "1"), Attribute::new("b", "2"), Attribute::new("c", "3")];
        let v = key.bind_profile(attrs.iter());
        assert_eq!(v.len(), 3);
        assert!(v.hashes().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn epoch_rotation() {
        let c = cfg();
        let key = DynamicKey::from_region(&VicinityRegion::around(&c, (0.0, 0.0), 20.0));
        assert_ne!(key.with_epoch(1), key.with_epoch(2));
        assert_eq!(key.with_epoch(7), key.with_epoch(7));
    }
}
