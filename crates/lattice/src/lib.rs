//! Hexagonal-lattice location hashing and privacy-preserving vicinity
//! regions (paper §III-D).
//!
//! Locations are snapped to the nearest point of a hexagonal lattice
//! spanned by `a₁ = (d, 0)` and `a₂ = (d/2, √3·d/2)` (paper Eq. 14–15).
//! A user's *vicinity region* is the set of lattice points within range
//! `D` of their snapped location; two users are "in vicinity" when the
//! intersection of their regions is a large enough fraction Θ of the
//! region (Eq. 16). Because lattice points hash like any other attribute,
//! a vicinity search is just a fuzzy profile match over lattice-point
//! attributes — no coordinates ever leave the device.
//!
//! # Example
//!
//! ```
//! use msb_lattice::{LatticeConfig, VicinityRegion};
//!
//! let cfg = LatticeConfig::new((0.0, 0.0), 10.0);
//! let alice = VicinityRegion::around(&cfg, (3.0, 4.0), 30.0);
//! let bob = VicinityRegion::around(&cfg, (8.0, 1.0), 30.0);
//! // Same cell: identical regions.
//! assert!(alice.shared_points(&bob) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod hex;
pub mod vicinity;

pub use dynamic::DynamicKey;
pub use hex::{LatticeConfig, LatticePoint};
pub use vicinity::VicinityRegion;
