//! The hexagonal lattice: primitive vectors, nearest-point snapping, and
//! lattice-point hashing (paper Eqs. 14–15, Fig. 3).

use msb_crypto::sha256::Sha256;
use msb_profile::attribute::AttributeHash;

/// Lattice parameters: an origin `O` and the minimum lattice-point
/// distance `d`. Both parties of a vicinity search must agree on these
/// (the initiator publishes them with the request).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeConfig {
    origin: (f64, f64),
    d: f64,
}

impl LatticeConfig {
    /// Creates a lattice anchored at `origin` with cell scale `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not strictly positive and finite.
    pub fn new(origin: (f64, f64), d: f64) -> Self {
        assert!(d.is_finite() && d > 0.0, "lattice scale must be positive");
        assert!(origin.0.is_finite() && origin.1.is_finite(), "origin must be finite");
        LatticeConfig { origin, d }
    }

    /// The origin `O`.
    pub fn origin(&self) -> (f64, f64) {
        self.origin
    }

    /// The lattice scale `d` (shortest distance between lattice points).
    pub fn d(&self) -> f64 {
        self.d
    }

    /// The circumradius of a hexagonal Voronoi cell, `d/√3`: no location
    /// is farther than this from its snapped lattice point.
    pub fn circumradius(&self) -> f64 {
        self.d / 3f64.sqrt()
    }

    /// The primitive vectors `a₁ = (d, 0)`, `a₂ = (d/2, √3·d/2)`.
    pub fn primitive_vectors(&self) -> ((f64, f64), (f64, f64)) {
        ((self.d, 0.0), (self.d / 2.0, 3f64.sqrt() / 2.0 * self.d))
    }

    /// Snaps a location to the nearest lattice point (the "lattice-based
    /// location hash" of §III-D-1).
    pub fn snap(&self, location: (f64, f64)) -> LatticePoint {
        let x = location.0 - self.origin.0;
        let y = location.1 - self.origin.1;
        // Fractional lattice coordinates from inverting
        // (x, y) = u1·a1 + u2·a2.
        let sqrt3 = 3f64.sqrt();
        let u2f = y / (sqrt3 / 2.0 * self.d);
        let u1f = (x - u2f * self.d / 2.0) / self.d;
        // The Voronoi cell of a hex lattice is a hexagon, so independent
        // rounding is wrong near cell corners; search the 3×3 integer
        // neighbourhood for the true nearest point.
        let (u1r, u2r) = (u1f.round() as i64, u2f.round() as i64);
        let mut best = LatticePoint { u1: u1r, u2: u2r };
        let mut best_d2 = f64::INFINITY;
        for du1 in -1..=1 {
            for du2 in -1..=1 {
                let cand = LatticePoint { u1: u1r + du1, u2: u2r + du2 };
                let (cx, cy) = self.point_xy_rel(cand);
                let d2 = (cx - x).powi(2) + (cy - y).powi(2);
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = cand;
                }
            }
        }
        best
    }

    /// Cartesian coordinates of a lattice point (absolute).
    pub fn point_xy(&self, p: LatticePoint) -> (f64, f64) {
        let (x, y) = self.point_xy_rel(p);
        (x + self.origin.0, y + self.origin.1)
    }

    fn point_xy_rel(&self, p: LatticePoint) -> (f64, f64) {
        let sqrt3 = 3f64.sqrt();
        (p.u1 as f64 * self.d + p.u2 as f64 * self.d / 2.0, p.u2 as f64 * sqrt3 / 2.0 * self.d)
    }

    /// Euclidean distance between two lattice points.
    pub fn point_distance(&self, a: LatticePoint, b: LatticePoint) -> f64 {
        let (ax, ay) = self.point_xy_rel(a);
        let (bx, by) = self.point_xy_rel(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// All lattice points within Euclidean distance `range` of `center`
    /// (inclusive), sorted by `(u1, u2)` — the vicinity lattice point set
    /// `V(O, d, l, D)`.
    pub fn points_within(&self, center: LatticePoint, range: f64) -> Vec<LatticePoint> {
        let mut out = Vec::new();
        self.points_within_into(center, range, &mut out);
        out
    }

    /// Allocation-free variant of [`LatticeConfig::points_within`]: clears
    /// `out` and fills it with the vicinity point set, sorted by
    /// `(u1, u2)`. Hot paths (the simulator's spatial index queries cells
    /// once per broadcast and per BFS visit) reuse one buffer across
    /// calls.
    pub fn points_within_into(
        &self,
        center: LatticePoint,
        range: f64,
        out: &mut Vec<LatticePoint>,
    ) {
        assert!(range >= 0.0 && range.is_finite(), "range must be non-negative");
        out.clear();
        // |u1 a1 + u2 a2| >= (|u1| + |u2|) * d * sin(60°) is loose; a safe
        // bounding box is range / (d·√3/2) in u2 and range/d + that in u1.
        let sqrt3 = 3f64.sqrt();
        let u2_span = (range / (self.d * sqrt3 / 2.0)).ceil() as i64 + 1;
        let u1_span = (range / self.d).ceil() as i64 + u2_span + 1;
        for du1 in -u1_span..=u1_span {
            for du2 in -u2_span..=u2_span {
                let p = LatticePoint { u1: center.u1 + du1, u2: center.u2 + du2 };
                if self.point_distance(center, p) <= range + 1e-9 {
                    out.push(p);
                }
            }
        }
        out.sort_unstable();
    }

    /// The lattice points whose Voronoi cells could contain a location
    /// within Euclidean `range` of the arbitrary position `pos` —
    /// the cell cover a bucket index must scan to answer a range query.
    ///
    /// Every location snaps to a point at most [`circumradius`] `r_c`
    /// away, so for a member `m` of cell `q` with `|m − pos| ≤ range`,
    /// the triangle inequality gives `|q − snap(pos)| ≤ range + 2·r_c`.
    /// A small absolute margin absorbs the floating-point slack so
    /// members *exactly* at `range` are never missed.
    ///
    /// [`circumradius`]: LatticeConfig::circumradius
    pub fn cells_covering_into(&self, pos: (f64, f64), range: f64, out: &mut Vec<LatticePoint>) {
        let cover = range + 2.0 * self.circumradius() + 1e-6;
        self.points_within_into(self.snap(pos), cover, out);
    }

    /// Canonical bytes identifying this lattice (origin + scale), mixed
    /// into every lattice-point hash so points from different lattices
    /// never collide.
    fn domain(&self) -> [u8; 24] {
        let mut out = [0u8; 24];
        out[..8].copy_from_slice(&self.origin.0.to_bits().to_be_bytes());
        out[8..16].copy_from_slice(&self.origin.1.to_bits().to_be_bytes());
        out[16..].copy_from_slice(&self.d.to_bits().to_be_bytes());
        out
    }

    /// Hashes a lattice point into an [`AttributeHash`] — lattice points
    /// are attributes like any other, which is what makes vicinity search
    /// a plain fuzzy profile match.
    pub fn point_hash(&self, p: LatticePoint) -> AttributeHash {
        let mut buf = Vec::with_capacity(24 + 16 + 4);
        buf.extend_from_slice(b"lat:");
        buf.extend_from_slice(&self.domain());
        buf.extend_from_slice(&p.u1.to_be_bytes());
        buf.extend_from_slice(&p.u2.to_be_bytes());
        AttributeHash::from_bytes(Sha256::digest(&buf))
    }
}

/// A lattice point in integer coordinates `(u1, u2)` over the primitive
/// vectors (paper Eq. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LatticePoint {
    /// Coefficient of `a₁`.
    pub u1: i64,
    /// Coefficient of `a₂`.
    pub u2: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LatticeConfig {
        LatticeConfig::new((0.0, 0.0), 10.0)
    }

    #[test]
    fn snap_origin() {
        assert_eq!(cfg().snap((0.0, 0.0)), LatticePoint { u1: 0, u2: 0 });
    }

    #[test]
    fn snap_is_nearest_point() {
        let c = cfg();
        // Sample a grid of locations; the snapped point must be at least
        // as close as any neighbouring lattice point.
        for ix in -20..20 {
            for iy in -20..20 {
                let loc = (ix as f64 * 1.7, iy as f64 * 2.3);
                let p = c.snap(loc);
                let (px, py) = c.point_xy(p);
                let d_snap = ((px - loc.0).powi(2) + (py - loc.1).powi(2)).sqrt();
                for du1 in -2..=2i64 {
                    for du2 in -2..=2i64 {
                        let q = LatticePoint { u1: p.u1 + du1, u2: p.u2 + du2 };
                        let (qx, qy) = c.point_xy(q);
                        let d_q = ((qx - loc.0).powi(2) + (qy - loc.1).powi(2)).sqrt();
                        assert!(
                            d_snap <= d_q + 1e-9,
                            "snap missed nearest at {loc:?}: {p:?} vs {q:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn snap_within_circumradius() {
        // Any point is within d/√3 (hex circumradius) of its snap.
        let c = cfg();
        let max = c.d() / 3f64.sqrt() + 1e-9;
        for i in 0..500 {
            let loc = ((i as f64 * 0.7919) % 60.0 - 30.0, (i as f64 * 1.3331) % 60.0 - 30.0);
            let p = c.snap(loc);
            let (px, py) = c.point_xy(p);
            let dist = ((px - loc.0).powi(2) + (py - loc.1).powi(2)).sqrt();
            assert!(dist <= max, "dist {dist} at {loc:?}");
        }
    }

    #[test]
    fn nearest_neighbours_at_distance_d() {
        let c = cfg();
        let origin = LatticePoint { u1: 0, u2: 0 };
        // The six nearest neighbours of a hex lattice sit at distance d.
        let neighbours = [(1i64, 0i64), (-1, 0), (0, 1), (0, -1), (1, -1), (-1, 1)];
        for (u1, u2) in neighbours {
            let d = c.point_distance(origin, LatticePoint { u1, u2 });
            assert!((d - 10.0).abs() < 1e-9, "({u1},{u2}) at {d}");
        }
    }

    #[test]
    fn points_within_counts() {
        let c = cfg();
        let center = LatticePoint { u1: 0, u2: 0 };
        // r < d: only the center.
        assert_eq!(c.points_within(center, 5.0).len(), 1);
        // r = d: center + 6 neighbours.
        assert_eq!(c.points_within(center, 10.0).len(), 7);
        // r = √3·d ≈ 17.32: + 6 second-shell points = 13.
        assert_eq!(c.points_within(center, 17.4).len(), 13);
        // r = 2d: + 6 = 19 — the paper's D = 3d example region uses the
        // same shell structure.
        assert_eq!(c.points_within(center, 20.0).len(), 19);
    }

    #[test]
    fn points_within_sorted_and_contains_center() {
        let c = cfg();
        let center = LatticePoint { u1: 3, u2: -2 };
        let pts = c.points_within(center, 25.0);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert!(pts.contains(&center));
    }

    #[test]
    fn points_within_into_reuses_buffer() {
        let c = cfg();
        let center = LatticePoint { u1: 0, u2: 0 };
        let mut buf = vec![LatticePoint { u1: 99, u2: 99 }];
        c.points_within_into(center, 10.0, &mut buf);
        assert_eq!(buf, c.points_within(center, 10.0));
        c.points_within_into(center, 5.0, &mut buf);
        assert_eq!(buf, vec![center], "buffer must be cleared between calls");
    }

    #[test]
    fn cells_covering_catches_all_in_range_members() {
        // Every location within `range` of `pos` snaps to a cell in the
        // cover — including members exactly at `range` and on cell
        // boundaries.
        let c = cfg();
        let mut cover = Vec::new();
        for i in 0..40 {
            let pos = ((i as f64 * 3.7) % 50.0 - 25.0, (i as f64 * 5.3) % 50.0 - 25.0);
            let range = 5.0 + (i as f64 * 1.9) % 45.0;
            c.cells_covering_into(pos, range, &mut cover);
            for k in 0..64 {
                let theta = k as f64 / 64.0 * std::f64::consts::TAU;
                // Members exactly on the range circle and just inside it.
                for r in [range, range * 0.5, range * 0.999] {
                    let member = (pos.0 + r * theta.cos(), pos.1 + r * theta.sin());
                    let cell = c.snap(member);
                    assert!(
                        cover.contains(&cell),
                        "member {member:?} (r={r}) of query at {pos:?} range {range} \
                         snapped to uncovered cell {cell:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn circumradius_bounds_snap_distance() {
        let c = cfg();
        assert!((c.circumradius() - 10.0 / 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn point_hash_distinguishes_points_and_lattices() {
        let c1 = cfg();
        let c2 = LatticeConfig::new((0.0, 0.0), 20.0);
        let p = LatticePoint { u1: 1, u2: 2 };
        let q = LatticePoint { u1: 2, u2: 1 };
        assert_ne!(c1.point_hash(p), c1.point_hash(q));
        assert_ne!(c1.point_hash(p), c2.point_hash(p));
    }

    #[test]
    fn same_cell_same_snap() {
        let c = cfg();
        // Two locations 1m apart in a 10m cell snap identically (the
        // "bounded distance d" guarantee).
        let a = c.snap((1.0, 1.0));
        let b = c.snap((1.5, 1.4));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = LatticeConfig::new((0.0, 0.0), 0.0);
    }
}
