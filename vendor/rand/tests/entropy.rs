//! Guards against a silently constant `thread_rng()`: protocol nonces
//! and channel keys draw from it, so two generators created back to
//! back must not replay one stream.

use rand::{thread_rng, Rng};

#[test]
fn successive_thread_rngs_differ() {
    let a: [u8; 32] = thread_rng().gen();
    let b: [u8; 32] = thread_rng().gen();
    assert_ne!(a, b, "two thread_rng() instances produced identical output");
}

#[test]
fn one_thread_rng_is_not_constant() {
    let mut rng = thread_rng();
    let draws: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
    let distinct: std::collections::BTreeSet<_> = draws.iter().collect();
    assert!(distinct.len() > 1, "thread_rng stream is constant: {draws:?}");
}
