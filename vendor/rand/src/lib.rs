//! Offline shim for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the `rand 0.8` API subset the workspace uses: the `RngCore`
//! / `Rng` / `SeedableRng` traits, `rngs::StdRng`, and `thread_rng()`.
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — *not* the
//! ChaCha12 generator of upstream `rand` — so seeded streams differ
//! from upstream. Nothing in the workspace depends on the exact stream,
//! only on determinism per seed, which this preserves.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's full range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; panics if the range is empty.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` (`span >= 1`), bias-free via Lemire's
/// widening-multiply rejection method on 64-bit draws.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span > u64::MAX as u128 {
        // Only reachable for |range| > 2^64 (e.g. i128-sized spans of
        // i64); plain modulo bias at that width is < 2^-64.
        return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
    }
    let s = span as u64;
    // Reject while the low half lands below (2^64 mod s), which is the
    // over-represented remainder zone.
    let threshold = s.wrapping_neg() % s;
    loop {
        let m = (rng.next_u64() as u128) * (s as u128);
        if m as u64 >= threshold {
            return m >> 64;
        }
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = lo + (hi - lo) * unit;
                // Guard the open upper bound against rounding.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Destinations for [`Rng::fill`].
pub trait Fill {
    /// Fills `self` with random data from `rng`.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// User-facing random value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns a uniform random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        <f64 as Standard>::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from fixed data, for reproducible streams.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator from system entropy (wall clock + a
    /// process-wide counter in this shim).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
    nanos ^ COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
}

/// Deterministic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256**.
    ///
    /// Deterministic per seed; streams differ from upstream `rand`'s
    /// ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut sm = 0xdead_beef_cafe_f00du64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A lazily-seeded generator for `thread_rng()`.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a generator seeded from system entropy.
///
/// **Not cryptographically secure.** Upstream `rand`'s `thread_rng` is
/// a CSPRNG; this shim seeds xoshiro256** from the wall clock and a
/// counter, which is unpredictable enough for simulations but NOT for
/// session secrets an adversary may try to guess. There is accordingly
/// no `CryptoRng` marker in this shim: code that needs real entropy
/// must not be written against it.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(entropy_seed()))
}

/// Returns a single random value from [`thread_rng`].
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-10i32..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "p=0.25 gave {hits}/100000");
    }

    #[test]
    fn fill_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut any_nonzero = [false; 32];
        for _ in 0..16 {
            let mut buf = [0u8; 32];
            rng.fill(&mut buf);
            for (flag, b) in any_nonzero.iter_mut().zip(buf) {
                *flag |= b != 0;
            }
        }
        assert!(any_nonzero.iter().all(|&f| f));
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
