//! Offline shim for `serde`.
//!
//! The build environment cannot reach crates.io. The workspace only
//! *derives* `Serialize`/`Deserialize` today (no serializer backend is
//! wired up), so this shim keeps the trait names and derive macros
//! compiling while carrying no serialization machinery. When a real
//! wire format lands (see ROADMAP "serde wire format"), this crate is
//! the seam to replace with upstream `serde` or a hand-rolled codec.

#![forbid(unsafe_code)]

/// Marker for types that can be serialized.
///
/// Carries no methods in this shim; the derive emits an empty impl.
pub trait Serialize {}

/// Marker for types that can be deserialized.
///
/// Carries no methods in this shim; the derive emits an empty impl.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
