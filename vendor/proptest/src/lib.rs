//! Offline shim for `proptest`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! reimplements the `proptest` surface the workspace's property tests
//! use: the `proptest!` macro grammar (`ident in strategy` parameters),
//! `prop_assert*` / `prop_assume!`, `any::<T>()`, integer/float range
//! strategies, a character-class string strategy, `collection::{vec,
//! btree_set}`, and `sample::Index`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the generated inputs and
//!   the seed, but is not minimized.
//! - **Deterministic seeding.** Each test derives its seed from its
//!   full path (override with `PROPTEST_SEED`), so CI runs reproduce.
//! - `PROPTEST_CASES` controls the case count (default 64).

#![forbid(unsafe_code)]

use std::fmt;

/// Why a single generated test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

pub mod test_runner {
    //! The per-test driver: seeding, the case loop, and failure reports.

    use super::TestCaseError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Carries the RNG through one test's generation calls.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Creates a runner from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRunner { rng: StdRng::seed_from_u64(seed) }
        }

        /// The generator strategies draw from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    fn env_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok()?.trim().parse().ok()
    }

    /// FNV-1a, so every test gets its own deterministic stream.
    fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `f` until `PROPTEST_CASES` cases pass, panicking on the
    /// first failure with the generated inputs and the seed.
    pub fn run<F>(name: &str, mut f: F)
    where
        F: FnMut(&mut TestRunner) -> (String, Result<(), TestCaseError>),
    {
        let cases = env_u64("PROPTEST_CASES").unwrap_or(64).max(1);
        let seed = env_u64("PROPTEST_SEED").unwrap_or_else(|| hash_name(name));
        let mut runner = TestRunner::new(seed);
        let max_attempts = cases.saturating_mul(20).saturating_add(100);
        let mut accepted = 0u64;
        let mut attempts = 0u64;
        while accepted < cases {
            attempts += 1;
            if attempts > max_attempts {
                panic!(
                    "{name}: too many prop_assume! rejections \
                     ({accepted}/{cases} cases after {attempts} attempts, seed {seed})"
                );
            }
            let (inputs, outcome) = f(&mut runner);
            match outcome {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "{name}: property failed at case {accepted} (seed {seed}, \
                     rerun with PROPTEST_SEED={seed}):\n  {msg}\n  inputs: {inputs}"
                ),
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the range implementations.

    use super::test_runner::TestRunner;
    use rand::{Rng, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no value tree: strategies
    /// produce final values directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).new_value(runner)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            runner.rng().gen_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            runner.rng().gen_range(self.clone())
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_via_standard!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32
    );

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.gen()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, runner: &mut TestRunner) -> A {
            A::arbitrary(runner.rng())
        }
    }

    /// The whole-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod sample {
    //! Proportional indices into runtime-sized collections.

    use super::arbitrary::Arbitrary;
    use rand::RngCore;

    /// A position drawn independently of any collection, resolved
    /// against a length at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Maps this draw onto `0..len` proportionally.
        ///
        /// Panics if `len` is zero, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            ((self.raw as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            Index { raw: rng.next_u64() }
        }
    }
}

pub mod collection {
    //! Collection strategies sized by a `Range<usize>`.

    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let n = runner.rng().gen_range(self.size.clone());
            (0..n).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with size drawn from a range.
    #[derive(Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets whose size lies in `size`.
    ///
    /// If the element domain is too small to reach the drawn size, the
    /// set saturates at whatever distinct values were found (upstream
    /// rejects instead; no workspace test depends on the difference).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let n = runner.rng().gen_range(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n.saturating_mul(10) + 16 {
                out.insert(self.element.new_value(runner));
                attempts += 1;
            }
            out
        }
    }
}

mod string {
    //! `&str` patterns as string strategies, for the character-class
    //! subset the workspace uses: `[class]{m,n}`, `[class]{n}`,
    //! `[class]*`, `[class]+`, where `class` mixes literals and `a-z`
    //! ranges.

    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use rand::Rng;

    struct Pattern {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Pattern {
        let mut chars = pattern.chars().peekable();
        assert_eq!(
            chars.next(),
            Some('['),
            "proptest shim supports only `[class]{{m,n}}` string patterns, got {pattern:?}"
        );
        let mut alphabet = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
            match c {
                ']' => {
                    if let Some(p) = pending {
                        alphabet.push(p);
                    }
                    break;
                }
                // `a-z` range, unless `-` is the last class member
                // (then it is a literal, as in `[.,-]`).
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let lo = pending.take().unwrap();
                    let hi =
                        chars.next().unwrap_or_else(|| panic!("dangling range in {pattern:?}"));
                    assert!(lo <= hi, "descending range {lo}-{hi} in {pattern:?}");
                    alphabet.extend(lo..=hi);
                }
                '\\' => {
                    let escaped =
                        chars.next().unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                    if let Some(p) = pending.replace(escaped) {
                        alphabet.push(p);
                    }
                }
                _ => {
                    if let Some(p) = pending.replace(c) {
                        alphabet.push(p);
                    }
                }
            }
        }
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
        let (min, max) = match chars.next() {
            Some('{') => {
                let rest: String = chars.collect();
                let body = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => (0, 32),
            Some('+') => (1, 32),
            None => (1, 1),
            Some(other) => panic!("unsupported pattern suffix {other:?} in {pattern:?}"),
        };
        assert!(min <= max, "descending repetition in {pattern:?}");
        Pattern { alphabet, min, max }
    }

    impl Strategy for str {
        type Value = String;
        fn new_value(&self, runner: &mut TestRunner) -> String {
            let p = parse(self);
            let n = runner.rng().gen_range(p.min..=p.max);
            (0..n).map(|_| p.alphabet[runner.rng().gen_range(0..p.alphabet.len())]).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test module conventionally glob-imports.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares `#[test]` functions whose arguments are drawn from
/// strategies, `proptest` style: `fn name(x in strategy, ...)`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    |__pt_runner| {
                        $(
                            let $arg = $crate::strategy::Strategy::new_value(
                                &($strat),
                                __pt_runner,
                            );
                        )*
                        let mut __pt_inputs = ::std::string::String::new();
                        $(
                            __pt_inputs.push_str(&::std::format!(
                                "{} = {:?}; ",
                                stringify!($arg),
                                &$arg
                            ));
                        )*
                        let __pt_outcome: ::std::result::Result<(), $crate::TestCaseError> =
                            (move || {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        (__pt_inputs, __pt_outcome)
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts two expressions are unequal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right` ({})\n  both: {:?}",
            ::std::format!($($fmt)+),
            left
        );
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
