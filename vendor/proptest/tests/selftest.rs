//! Self-tests for the proptest shim: the macro grammar compiles, cases
//! actually run, assumptions reject, and failures really fail.

use proptest::prelude::*;

fn even() -> impl Strategy<Value = u64> {
    0u64..1000
}

proptest! {
    /// Doc comments and multiple parameters parse.
    #[test]
    fn addition_commutes(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn ranges_respect_bounds(x in 3usize..17, y in 5u64..=9, f in 0.25f64..0.75) {
        prop_assert!((3..17).contains(&x));
        prop_assert!((5..=9).contains(&y));
        prop_assert!((0.25..0.75).contains(&f), "f out of range: {}", f);
    }

    #[test]
    fn helper_strategies_work(v in even(), bytes in proptest::collection::vec(any::<u8>(), 2..5)) {
        prop_assert!(v < 1000);
        prop_assert!((2..5).contains(&bytes.len()));
    }

    #[test]
    fn assume_rejects_without_failing(a in any::<u8>()) {
        prop_assume!(a % 2 == 0);
        prop_assert_eq!(a % 2, 0);
    }

    #[test]
    fn string_patterns_match_class(s in "[a-z]{1,8}", t in "[a-zA-Z0-9 .,-]{0,40}") {
        prop_assert!((1..=8).contains(&s.len()));
        prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        prop_assert!(t.len() <= 40);
        prop_assert!(t.chars().all(|c| {
            c.is_ascii_alphanumeric() || c == ' ' || c == '.' || c == ',' || c == '-'
        }));
    }

    #[test]
    fn sample_index_stays_in_bounds(idx in any::<prop::sample::Index>(), len in 1usize..50) {
        prop_assert!(idx.index(len) < len);
    }

    #[test]
    fn arrays_are_generated(k32 in any::<[u8; 32]>(), k16 in any::<[u8; 16]>()) {
        prop_assert_eq!(k32.len(), 32);
        prop_assert_eq!(k16.len(), 16);
    }

    #[test]
    fn btree_sets_are_sized(set in proptest::collection::btree_set("[a-z]{1,8}", 1..8)) {
        prop_assert!(!set.is_empty() && set.len() < 8);
    }

    /// A falsifiable property must actually fail.
    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_are_detected(a in any::<u64>()) {
        prop_assert!(a % 2 == 0, "odd values must fail this test");
    }

    /// prop_assert_ne works and reports.
    #[test]
    fn ne_assertion(a in 0u32..10) {
        prop_assert_ne!(a, 10);
    }
}

#[test]
fn values_vary_across_cases() {
    use proptest::arbitrary::Arbitrary;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::new(1);
    let draws: Vec<u64> = (0..16).map(|_| u64::arbitrary(runner.rng())).collect();
    let distinct: std::collections::BTreeSet<_> = draws.iter().collect();
    assert!(distinct.len() > 8, "RNG must not be constant: {draws:?}");
}
