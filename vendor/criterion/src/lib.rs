//! Offline shim for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's
//! benches use — `Criterion::benchmark_group`, `bench_function`,
//! `sample_size`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — over a plain wall-clock harness.
//!
//! Reported numbers are mean/min/max per iteration (no statistical
//! outlier analysis and no HTML reports). Samples auto-calibrate so
//! each sample runs for roughly `target_sample_time`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30, target_sample_time: Duration::from_millis(20) }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let target = self.target_sample_time;
        run_benchmark(&id.into(), sample_size, target, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&full, samples, self.criterion.target_sample_time, f);
        self
    }

    /// Finishes the group (no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, target: Duration, mut f: F) {
    // Calibrate: find an iteration count whose sample takes ~target.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64;

    let mut mean_sum = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for _ in 0..samples {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        let ns = b.elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64;
        mean_sum += ns;
        min = min.min(ns);
        max = max.max(ns);
    }
    let mean = mean_sum / samples as f64;
    println!(
        "{id:<40} time: [{} {} {}]  ({samples} samples x {iters_per_sample} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Times the closure handed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `routine`, recording the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut runs = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs >= 3, "calibration + 2 samples must run the closure");
    }
}
