//! No-op `Serialize`/`Deserialize` derives for the vendored `serde`
//! shim. The shim traits have no required methods, so the derives only
//! need the type's name (plus any generics) to emit an empty impl.
//!
//! Written against `proc_macro` directly — no `syn`/`quote`, since the
//! build environment has no crates.io access.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The name, generics, and where-clause of the item being derived for.
struct Target {
    name: String,
    /// Generic parameter list including angle brackets, e.g. `<T, 'a>`,
    /// or empty.
    generics: String,
    /// Bare parameter names for the use-site, e.g. `<T, 'a>`, or empty.
    generic_args: String,
    where_clause: String,
}

/// Extracts the derive target from the token stream of a
/// `struct`/`enum`/`union` definition.
fn parse_target(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility to the item keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    i += 1;
                    break;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    i += 1;

    // Collect `<...>` generics if present, tracking bracket depth since
    // `<` / `>` arrive as individual punctuation tokens.
    let mut generics = String::new();
    let mut generic_args = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0usize;
            let mut params: Vec<String> = Vec::new();
            let mut current = String::new();
            let mut in_bound = false;
            loop {
                let Some(tok) = tokens.get(i) else {
                    panic!("serde_derive shim: unterminated generics")
                };
                generics.push_str(&tok.to_string());
                generics.push(' ');
                match tok {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            if !current.is_empty() {
                                params.push(current.clone());
                            }
                            i += 1;
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        if !current.is_empty() {
                            params.push(current.clone());
                        }
                        current.clear();
                        in_bound = false;
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => in_bound = true,
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && !in_bound => {
                        current.push('\'');
                    }
                    TokenTree::Ident(id) if depth == 1 && !in_bound => {
                        if id.to_string() != "const" {
                            current.push_str(&id.to_string());
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            generic_args = format!("<{}>", params.join(", "));
        }
    }

    // A trailing where-clause (before the body braces / semicolon).
    let mut where_clause = String::new();
    let mut in_where = false;
    for tok in &tokens[i..] {
        match tok {
            TokenTree::Ident(id) if id.to_string() == "where" => {
                in_where = true;
                where_clause.push_str("where ");
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            t if in_where => {
                where_clause.push_str(&t.to_string());
                where_clause.push(' ');
            }
            _ => {}
        }
    }

    Target { name, generics, generic_args, where_clause }
}

/// Derives the shim `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let t = parse_target(input);
    format!(
        "#[automatically_derived] impl {} ::serde::Serialize for {} {} {} {{}}",
        t.generics, t.name, t.generic_args, t.where_clause
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}

/// Derives the shim `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let t = parse_target(input);
    // Splice the 'de lifetime into the impl generics.
    let impl_generics = if t.generics.is_empty() {
        "<'de>".to_string()
    } else {
        // `t.generics` starts with `< `; insert after the opening bracket.
        format!("<'de, {}", &t.generics.trim_start()[1..])
    };
    format!(
        "#[automatically_derived] impl {} ::serde::Deserialize<'de> for {} {} {} {{}}",
        impl_generics, t.name, t.generic_args, t.where_clause
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}
