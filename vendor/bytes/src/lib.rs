//! Offline shim for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses:
//! big-endian `get_*`/`put_*` cursors over owned byte buffers. The
//! semantics mirror `bytes` 1.x for that subset; anything the workspace
//! does not call is simply absent.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An owned, cheaply splittable read cursor over a byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Splits off and returns the first `n` remaining bytes.
    ///
    /// Panics if fewer than `n` bytes remain, like `bytes::Bytes::split_to`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "split_to out of bounds");
        let head = Bytes { data: self.data[self.pos..self.pos + n].to_vec(), pos: 0 };
        self.pos += n;
        head
    }

    /// The remaining bytes as a slice.
    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// A growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes the buffer into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor; all multi-byte reads are big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance out of bounds");
        self.pos += cnt;
    }
}

/// Write access to a byte buffer; all multi-byte writes are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_slice(b"tail");
        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(&r.split_to(4)[..], b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(b.remaining(), 3);
        assert_eq!(&b[..], &[3, 4, 5]);
    }
}
