//! Offline shim for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses:
//! big-endian `get_*`/`put_*` cursors over byte buffers. The semantics
//! mirror `bytes` 1.x for that subset; anything the workspace does not
//! call is simply absent.
//!
//! Like upstream, [`Bytes`] is a reference-counted view: `clone`,
//! `split_to` and `slice` share the underlying allocation instead of
//! copying it. The simulator's broadcast fan-out and the `msb-wire`
//! frame splitter rely on this being O(1).

#![forbid(unsafe_code)]

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An owned, cheaply cloneable and sliceable view into shared bytes.
///
/// Cloning, [`Bytes::split_to`] and [`Bytes::slice`] are zero-copy: they
/// produce new views over the same reference-counted allocation.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a buffer by copying `data` (one allocation; every view
    /// derived from it afterwards is zero-copy).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Splits off and returns the first `n` remaining bytes; both views
    /// share the allocation.
    ///
    /// Panics if fewer than `n` bytes remain, like `bytes::Bytes::split_to`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + n };
        self.start += n;
        head
    }

    /// A zero-copy sub-view of the remaining bytes.
    ///
    /// Panics when the range is out of bounds or inverted, like
    /// `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&i) => i,
            std::ops::Bound::Excluded(&i) => i + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&i) => i + 1,
            std::ops::Bound::Excluded(&i) => i,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The remaining bytes as a slice.
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::from(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes the buffer into an immutable `Bytes` (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor; all multi-byte reads are big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Write access to a byte buffer; all multi-byte writes are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_slice(b"tail");
        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(&r.split_to(4)[..], b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(b.remaining(), 3);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn clone_and_slice_share_allocation() {
        let b = Bytes::from(vec![0u8; 64]);
        let c = b.clone();
        let s = b.slice(8..24);
        // All three views point into one allocation.
        assert!(Arc::ptr_eq(&b.data, &c.data));
        assert!(Arc::ptr_eq(&b.data, &s.data));
        assert_eq!(s.len(), 16);
    }

    #[test]
    fn slice_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&b.slice(1..3)[..], &[2, 3]);
        assert_eq!(&b.slice(..)[..], &[1, 2, 3, 4]);
        assert_eq!(&b.slice(2..)[..], &[3, 4]);
        assert_eq!(&b.slice(..=2)[..], &[1, 2, 3]);
        // A view of a view stays anchored correctly.
        let inner = b.slice(1..).slice(1..);
        assert_eq!(&inner[..], &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(0..3);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::copy_from_slice(&[0, 1, 2, 3]).slice(1..);
        assert_eq!(a, b);
    }
}
