//! Property-based tests (proptest) on the core data structures and
//! protocol invariants, spanning crates.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sealed_bottle::bignum::BigUint;
use sealed_bottle::core::protocol::ResponderOutcome;
use sealed_bottle::crypto::aes::Aes256;
use sealed_bottle::crypto::hmac::HmacSha256;
use sealed_bottle::crypto::modes::{cbc_decrypt, cbc_encrypt, Ctr};
use sealed_bottle::crypto::sha256::Sha256;
use sealed_bottle::prelude::*;
use sealed_bottle::profile::hint::{HintConstruction, HintMatrix};
use sealed_bottle::profile::matching::{enumerate_candidate_keys, EnumerationMode, MatchConfig};
use sealed_bottle::profile::normalize::Normalizer;

proptest! {
    // ---------- crypto ----------

    #[test]
    fn ctr_is_involutive(key in any::<[u8; 32]>(), nonce in any::<[u8; 16]>(), data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let cipher = Aes256::new(&key);
        let mut buf = data.clone();
        Ctr::new(&cipher, nonce).apply_keystream(&mut buf);
        if !data.is_empty() {
            // Keystream must actually change the data (up to 2^-128 flukes).
            prop_assert_ne!(&buf, &data);
        }
        Ctr::new(&cipher, nonce).apply_keystream(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn cbc_roundtrip(key in any::<[u8; 32]>(), iv in any::<[u8; 16]>(), data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let cipher = Aes256::new(&key);
        let ct = cbc_encrypt(&cipher, iv, &data);
        prop_assert_eq!(cbc_decrypt(&cipher, iv, &ct).unwrap(), data);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..1024), split in any::<prop::sample::Index>()) {
        let cut = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut.min(data.len())]);
        h.update(&data[cut.min(data.len())..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// Midstate contract: cloning a hasher (or `finalize_suffix`) after
    /// absorbing an arbitrary prefix, then finishing with an arbitrary
    /// suffix, is byte-identical to one-shot hashing the concatenation —
    /// for every prefix/suffix length, including block boundaries. This
    /// is what lets the matching loop cache the necessary-block midstate
    /// and pay one finalize per candidate instead of re-hashing the
    /// prefix.
    #[test]
    fn sha256_midstate_equals_oneshot(
        prefix in proptest::collection::vec(any::<u8>(), 0..300),
        suffix in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut pre = Sha256::new();
        pre.update(&prefix);
        let full: Vec<u8> = [&prefix[..], &suffix].concat();
        let oneshot = Sha256::digest(&full);
        // Reusable midstate: finalize_suffix leaves `pre` untouched, so
        // it can complete many candidates.
        prop_assert_eq!(pre.finalize_suffix(&suffix), oneshot);
        prop_assert_eq!(pre.finalize_suffix(&suffix), oneshot);
        // Explicit clone path (what the benches time).
        let mut h = pre.clone();
        h.update(&suffix);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Multi-buffer hashing: `digest_many` must agree with per-message
    /// [`Sha256::digest`] for any mix of lengths — equal-length runs go
    /// through the 4-way interleaved compressor, stragglers through the
    /// scalar path, and the seams between the two must be invisible.
    #[test]
    fn sha256_digest_many_equals_serial(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..12),
        equalize in any::<bool>(),
        len in 0usize..150,
    ) {
        let msgs = if equalize {
            // Force equal lengths so the interleaved path is actually hit.
            msgs.into_iter().map(|mut m| { m.resize(len, 0x5a); m }).collect::<Vec<_>>()
        } else {
            msgs
        };
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let serial: Vec<_> = refs.iter().map(|m| Sha256::digest(m)).collect();
        prop_assert_eq!(Sha256::digest_many(&refs), serial);
    }

    #[test]
    fn hmac_verifies_and_rejects(key in proptest::collection::vec(any::<u8>(), 0..80), msg in proptest::collection::vec(any::<u8>(), 0..128), flip in any::<prop::sample::Index>()) {
        let tag = HmacSha256::mac(&key, &msg);
        prop_assert!(HmacSha256::verify(&key, &msg, &tag));
        if !msg.is_empty() {
            let mut tampered = msg.clone();
            let i = flip.index(tampered.len());
            tampered[i] ^= 1;
            prop_assert!(!HmacSha256::verify(&key, &tampered, &tag));
        }
    }

    // ---------- bignum ----------

    #[test]
    fn biguint_arithmetic_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (BigUint::from(a), BigUint::from(b));
        prop_assert_eq!(&ba + &bb, BigUint::from(a as u128 + b as u128));
        prop_assert_eq!(&ba * &bb, BigUint::from(a as u128 * b as u128));
        if let (Some(qe), Some(re)) = (a.checked_div(b), a.checked_rem(b)) {
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q, BigUint::from(qe));
            prop_assert_eq!(r, BigUint::from(re));
        }
    }

    #[test]
    fn biguint_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_be_bytes(&bytes);
        let back = v.to_be_bytes();
        let trimmed: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
        prop_assert_eq!(back, trimmed);
    }

    #[test]
    fn mod_pow_product_law(a in 2u64..1000, e1 in 0u64..64, e2 in 0u64..64, m in 3u64..10_000) {
        use sealed_bottle::bignum::modexp::mod_pow;
        let m = BigUint::from(m * 2 + 1); // odd modulus
        let base = BigUint::from(a);
        let lhs = mod_pow(&base, &BigUint::from(e1 + e2), &m);
        let rhs = mod_pow(&base, &BigUint::from(e1), &m)
            .mul_mod(&mod_pow(&base, &BigUint::from(e2), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    // ---------- profile machinery ----------

    #[test]
    fn normalization_idempotent(s in "[a-zA-Z0-9 .,-]{0,40}") {
        let n = Normalizer::default();
        let once = n.normalize(&s);
        // Expansion is one-way, but a normalized string re-normalizes to
        // itself unless it collides with an abbreviation key.
        let twice = n.normalize(&once);
        prop_assert_eq!(n.normalize(&twice.clone()), twice);
    }

    #[test]
    fn profile_key_order_invariant(values in proptest::collection::btree_set("[a-z]{1,8}", 1..8)) {
        let forward: Vec<Attribute> =
            values.iter().map(|v| Attribute::new("t", v)).collect();
        let mut backward = forward.clone();
        backward.reverse();
        let k1 = Profile::from_attributes(forward).vector().profile_key();
        let k2 = Profile::from_attributes(backward).vector().profile_key();
        prop_assert_eq!(k1, k2);
    }

    /// Theorem 1 end-to-end: a user satisfying a random request always
    /// passes the fast check AND derives the true profile key
    /// (exhaustive enumeration), for random p.
    #[test]
    fn no_false_negatives(
        nec_count in 0usize..3,
        opt_count in 1usize..5,
        beta_frac in 0.0f64..1.0,
        extra in 0usize..4,
        p_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let p = [11u64, 23, 97][p_idx];
        let necessary: Vec<Attribute> =
            (0..nec_count).map(|i| Attribute::new("n", format!("v{i}"))).collect();
        let optional: Vec<Attribute> =
            (0..opt_count).map(|i| Attribute::new("o", format!("v{i}"))).collect();
        let beta = ((opt_count as f64 * beta_frac) as usize).clamp(1, opt_count);
        let request = RequestProfile::new(necessary.clone(), optional.clone(), beta).unwrap();
        prop_assume!(request.len() < p as usize);

        // The user owns the necessary attrs + exactly beta optional +
        // noise.
        let mut owned = necessary;
        owned.extend(optional.into_iter().take(beta));
        for i in 0..extra {
            owned.push(Attribute::new("x", format!("noise{i}")));
        }
        let user = Profile::from_attributes(owned);
        prop_assert!(request.is_satisfied_by(&user));

        let mut rng = StdRng::seed_from_u64(seed);
        let sealed = request.seal(p, &mut rng);
        prop_assert!(sealed.remainder.fast_check(user.vector()), "fast check false negative");
        let keys = enumerate_candidate_keys(
            user.vector(),
            &sealed.remainder,
            sealed.hint.as_ref(),
            &MatchConfig { mode: EnumerationMode::Exhaustive, max_assignments: 100_000 },
        );
        prop_assert!(
            keys.iter().any(|k| k.key == sealed.key),
            "candidate keys missed the true key"
        );
    }

    /// Hint matrix: any ≤γ unknown pattern solves back to the truth, for
    /// random block sizes and both constructions.
    #[test]
    fn hint_matrix_total_recovery(
        opt_count in 2usize..7,
        beta in 1usize..6,
        mask in any::<u32>(),
        seed in any::<u64>(),
        random_construction in any::<bool>(),
    ) {
        prop_assume!(beta < opt_count);
        let gamma = opt_count - beta;
        let hashes: Vec<_> = {
            let mut h: Vec<_> = (0..opt_count)
                .map(|i| Attribute::new("o", format!("h{i}")).hash())
                .collect();
            h.sort_unstable();
            h
        };
        let construction = if random_construction {
            HintConstruction::Random
        } else {
            HintConstruction::Cauchy
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let hint = HintMatrix::generate(&hashes, beta, construction, &mut rng);

        // Random unknown pattern with <= gamma unknowns.
        let mut unknowns: Vec<usize> = (0..opt_count).filter(|i| mask >> i & 1 == 1).collect();
        unknowns.truncate(gamma);
        let assignment: Vec<Option<_>> = (0..opt_count)
            .map(|i| if unknowns.contains(&i) { None } else { Some(hashes[i]) })
            .collect();
        prop_assert_eq!(hint.solve(&assignment), Some(hashes));
    }

    // ---------- protocol round trips ----------

    /// Random profiles and thresholds: confirmation iff ground truth,
    /// for all three protocols.
    #[test]
    fn protocol_agrees_with_ground_truth(
        owned_mask in 0u32..32,
        beta in 1usize..4,
        kind_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let kind = [ProtocolKind::P1, ProtocolKind::P2, ProtocolKind::P3][kind_idx];
        let attrs: Vec<Attribute> =
            (0..5).map(|i| Attribute::new("t", format!("a{i}"))).collect();
        let request = RequestProfile::threshold(attrs.clone(), beta).unwrap();
        let owned: Vec<Attribute> = attrs
            .iter()
            .enumerate()
            .filter(|(i, _)| owned_mask >> i & 1 == 1)
            .map(|(_, a)| a.clone())
            .collect();
        let user = Profile::from_attributes(owned);
        let truth = request.is_satisfied_by(&user);

        let mut rng = StdRng::seed_from_u64(seed);
        let config = ProtocolConfig::new(kind, 11);
        let (mut initiator, pkg) = Initiator::create(&request, 0, &config, 0, &mut rng);
        let responder = Responder::new(1, user, &config);
        let confirmed = match responder.handle(&pkg, 100, &mut rng) {
            ResponderOutcome::Reply { reply, .. } => {
                !initiator.process_reply(&reply, 1_000).is_empty()
            }
            _ => false,
        };
        prop_assert_eq!(confirmed, truth);
    }

    /// Backend × thread-count sweep: the responder's reply must be
    /// byte-identical across the S-box oracle and the T-table backend at
    /// 1/2/4/8 worker threads, for random profiles, protocols, and
    /// moduli. One reference run (S-box, sequential) pins all fifteen
    /// other combinations.
    #[test]
    fn reply_bit_identical_across_backends_and_threads(
        owned_mask in 0u32..32,
        beta in 1usize..4,
        kind_idx in 0usize..3,
        p_idx in 0usize..2,
        seed in any::<u64>(),
    ) {
        use msb_crypto::aes::CipherBackend;
        use sealed_bottle::core::protocol::Parallelism;

        let kind = [ProtocolKind::P1, ProtocolKind::P2, ProtocolKind::P3][kind_idx];
        let p = [7u64, 11][p_idx]; // small p forces collision-heavy trial loops
        let attrs: Vec<Attribute> =
            (0..5).map(|i| Attribute::new("t", format!("a{i}"))).collect();
        let request = RequestProfile::threshold(attrs.clone(), beta).unwrap();
        let owned: Vec<Attribute> = attrs
            .iter()
            .enumerate()
            .filter(|(i, _)| owned_mask >> i & 1 == 1)
            .map(|(_, a)| a.clone())
            .collect();
        let user = Profile::from_attributes(owned);

        let mut reference_config = ProtocolConfig::new(kind, p);
        reference_config.cipher_backend = CipherBackend::Sbox;
        reference_config.parallelism = Parallelism::SEQUENTIAL;
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, pkg) = Initiator::create(&request, 0, &reference_config, 0, &mut rng);

        let reference = Responder::new(1, user.clone(), &reference_config)
            .handle(&pkg, 100, &mut StdRng::seed_from_u64(seed ^ 1));
        for backend in [CipherBackend::Sbox, CipherBackend::Table] {
            for threads in [1usize, 2, 4, 8] {
                let mut config = reference_config.clone();
                config.cipher_backend = backend;
                config.parallelism = Parallelism::new(threads);
                let outcome = Responder::new(1, user.clone(), &config)
                    .handle(&pkg, 100, &mut StdRng::seed_from_u64(seed ^ 1));
                match (&reference, &outcome) {
                    (
                        ResponderOutcome::Reply { reply: ra, verified: va, .. },
                        ResponderOutcome::Reply { reply: rb, verified: vb, .. },
                    ) => {
                        prop_assert_eq!(
                            ra.encode(), rb.encode(),
                            "wire bytes diverged: backend {:?}, {} threads", backend, threads
                        );
                        prop_assert_eq!(va, vb);
                    }
                    (ResponderOutcome::NoVerifiedMatch, ResponderOutcome::NoVerifiedMatch)
                    | (ResponderOutcome::NotCandidate, ResponderOutcome::NotCandidate) => {}
                    (a, b) => {
                        return Err(proptest::TestCaseError::fail(format!(
                            "outcome shape diverged (backend {backend:?}, {threads} threads): {a:?} vs {b:?}"
                        )));
                    }
                }
            }
        }
    }

    /// Channel integrity under arbitrary tampering.
    #[test]
    fn channel_rejects_any_tamper(
        x in any::<[u8; 32]>(),
        y in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<prop::sample::Index>(),
    ) {
        let mut a = SecureChannel::pairwise(&x, &y, Role::Initiator);
        let mut b = SecureChannel::pairwise(&x, &y, Role::Responder);
        let mut frame = a.seal(&msg);
        let i = flip.index(frame.len());
        frame[i] ^= 0x01;
        prop_assert!(b.open(&frame).is_err());
    }
}
