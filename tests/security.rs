//! Cross-crate security integration tests: the paper's §IV threat
//! analysis exercised end to end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sealed_bottle::core::adversary::{
    CheatingResponder, DictionaryAttackOutcome, DictionaryAttacker, Eavesdropper, MitmAttacker,
};
use sealed_bottle::core::protocol::ResponderOutcome;
use sealed_bottle::prelude::*;
use sealed_bottle::profile::entropy::{phi_k_anonymity, EntropyModel};

fn vocab(n: usize) -> Vec<Attribute> {
    (0..n).map(|i| Attribute::new("interest", format!("w{i}"))).collect()
}

fn request_from(vocab: &[Attribute]) -> RequestProfile {
    RequestProfile::new(
        vec![vocab[0].clone()],
        vec![vocab[1].clone(), vocab[2].clone(), vocab[3].clone()],
        2,
    )
    .unwrap()
}

fn matching_profile(vocab: &[Attribute]) -> Profile {
    Profile::from_attributes(vec![vocab[0].clone(), vocab[1].clone(), vocab[2].clone()])
}

/// Large attribute space: dictionary profiling is infeasible even for P1
/// when the vocabulary does not cover the request.
#[test]
fn p1_safe_outside_attacker_vocabulary() {
    let mut rng = StdRng::seed_from_u64(1);
    let words = vocab(50);
    let secret: Vec<Attribute> =
        (0..4).map(|i| Attribute::new("secret", format!("s{i}"))).collect();
    let request = RequestProfile::new(
        vec![secret[0].clone()],
        vec![secret[1].clone(), secret[2].clone(), secret[3].clone()],
        2,
    )
    .unwrap();
    let config = ProtocolConfig::new(ProtocolKind::P1, 11);
    let (_, pkg) = Initiator::create(&request, 0, &config, 0, &mut rng);
    let attacker = DictionaryAttacker::new(words);
    assert!(!matches!(
        attacker.attack_package(&pkg),
        DictionaryAttackOutcome::RecoveredRequest { .. }
    ));
}

/// Cheating (Definition 2): forged replies never confirm; the reject log
/// attributes them correctly.
#[test]
fn cheating_detected_across_many_forgeries() {
    let mut rng = StdRng::seed_from_u64(2);
    let words = vocab(10);
    let config = ProtocolConfig::new(ProtocolKind::P2, 11);
    let (mut initiator, _) = Initiator::create(&request_from(&words), 0, &config, 0, &mut rng);
    let cheater = CheatingResponder { id: 13 };
    for _ in 0..50 {
        let forged = cheater.forge_reply(initiator.request_id(), 4, &mut rng);
        assert!(initiator.process_reply(&forged, 1_000).is_empty());
    }
    assert_eq!(initiator.reject_log().no_valid_ack, 50);
    assert!(initiator.matches().is_empty());
}

/// MITM (§IV-A2): substituting the sealed message denies service but
/// never yields the attacker a usable channel secret.
#[test]
fn mitm_cannot_hijack_the_channel() {
    let mut rng = StdRng::seed_from_u64(3);
    let words = vocab(10);
    let config = ProtocolConfig::new(ProtocolKind::P2, 11);
    let (mut initiator, pkg) = Initiator::create(&request_from(&words), 0, &config, 0, &mut rng);
    let forged = MitmAttacker.substitute_message(&pkg, &mut rng);
    let responder = Responder::new(1, matching_profile(&words), &config);
    if let ResponderOutcome::Reply { reply, sessions, .. } =
        responder.handle(&forged, 100, &mut rng)
    {
        // Initiator rejects.
        assert!(initiator.process_reply(&reply, 1_000).is_empty());
        // And a channel built from the responder's garbled x with any
        // attacker guess fails to interoperate.
        let mut responder_channel = sessions[0].channel();
        let mut guess = [0u8; 32];
        rng.fill(&mut guess);
        let mut attacker_channel = SecureChannel::pairwise(&guess, &sessions[0].y, Role::Initiator);
        let frame = attacker_channel.seal(b"hijack");
        assert!(responder_channel.open(&frame).is_err());
    }
}

/// Eavesdropping the whole exchange yields no plaintext: the observer
/// sees remainders (quantifiably few bits) and ciphertexts only.
#[test]
fn eavesdropper_sees_only_bounded_leakage() {
    let mut rng = StdRng::seed_from_u64(4);
    let words = vocab(10);
    let config = ProtocolConfig::new(ProtocolKind::P2, 11);
    let (mut initiator, pkg) = Initiator::create(&request_from(&words), 0, &config, 0, &mut rng);
    let mut eve = Eavesdropper::new();
    eve.observe_package(&pkg);

    let responder = Responder::new(1, matching_profile(&words), &config);
    let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg, 100, &mut rng) else {
        panic!("matching user replies");
    };
    eve.observe_reply(&reply);
    assert_eq!(initiator.process_reply(&reply, 1_000).len(), 1);

    // The remainder vector leaks mt·log2(p) bits about 256-bit hashes.
    let leak = Eavesdropper::remainder_leak_bits(&pkg);
    assert!(leak < 32.0, "4 attributes × log2(11) ≈ 13.8 bits, got {leak}");
    // No attribute hash bytes appear anywhere in the observed traffic.
    let wire = [pkg.encode(), reply.encode()].concat();
    for attr in &words {
        let h = attr.hash();
        assert!(
            !wire.windows(8).any(|w| w == &h.as_bytes()[..8]),
            "attribute hash material leaked on the wire"
        );
    }
}

/// Protocol 3's ϕ budget holds across random candidate populations.
#[test]
fn phi_budget_never_exceeded() {
    let mut rng = StdRng::seed_from_u64(5);
    let words = vocab(12);
    let model = EntropyModel::from_counts(
        words.iter().map(|a| (a.category().to_string(), a.value().to_string(), 10u64)),
    );
    let phi = phi_k_anonymity(4096, 256); // 4 bits
    let attacker = DictionaryAttacker::new(words.clone());

    for trial in 0..10 {
        let config = ProtocolConfig::new(ProtocolKind::P3, 11);
        let (_, pkg) = Initiator::create(&request_from(&words), 0, &config, trial, &mut rng);
        // Random candidate profiles drawn from the vocabulary.
        let mut attrs = Vec::new();
        for w in &words {
            if rng.gen_bool(0.4) {
                attrs.push(w.clone());
            }
        }
        let responder = Responder::new(1, Profile::from_attributes(attrs), &config)
            .with_entropy_budget(model.clone(), phi);
        if let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg, 100, &mut rng) {
            for gamble in attacker.attack_reply(&pkg, &reply) {
                let leaked = model.profile_entropy(gamble.iter());
                assert!(leaked <= phi + 1e-9, "trial {trial}: leaked {leaked} > ϕ {phi}");
            }
        }
    }
}

/// Replay of a whole reply at a later request: the request id binds
/// replies to requests, so cross-request replay fails.
#[test]
fn reply_replay_across_requests_fails() {
    let mut rng = StdRng::seed_from_u64(6);
    let words = vocab(10);
    let config = ProtocolConfig::new(ProtocolKind::P1, 11);
    let (mut first, pkg1) = Initiator::create(&request_from(&words), 0, &config, 0, &mut rng);
    let responder = Responder::new(1, matching_profile(&words), &config);
    let ResponderOutcome::Reply { reply, .. } = responder.handle(&pkg1, 100, &mut rng) else {
        panic!("matching user replies");
    };
    assert_eq!(first.process_reply(&reply, 1_000).len(), 1);

    // Same request profile, new round: fresh x, fresh request id.
    let (mut second, _pkg2) =
        Initiator::create(&request_from(&words), 0, &config, 10_000, &mut rng);
    assert!(second.process_reply(&reply, 11_000).is_empty());
    assert_eq!(second.reject_log().wrong_request, 1);
}

/// The §IV-A timing-oracle argument rests on `msb_crypto::ct::eq` doing
/// data-independent work. The parallel responder path moves the tag and
/// confirmation checks onto worker threads, so the property is asserted
/// *from worker threads*: (a) correctness at every mismatch position,
/// and (b) no early exit — a first-byte mismatch takes about as long as
/// a last-byte mismatch on 64 KiB inputs, where a short-circuiting
/// comparison would be orders of magnitude faster.
#[test]
fn constant_time_compare_holds_on_worker_threads() {
    use std::time::Instant;
    const LEN: usize = 1 << 16;
    let base = vec![0xa5u8; LEN];
    let mut diff_first = base.clone();
    diff_first[0] ^= 0x80;
    let mut diff_last = base.clone();
    diff_last[LEN - 1] ^= 0x80;

    let median_ns = |other: &[u8], base: &[u8]| -> u128 {
        let mut samples: Vec<u128> = (0..31)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..8 {
                    std::hint::black_box(msb_crypto::ct::eq(
                        std::hint::black_box(base),
                        std::hint::black_box(other),
                    ));
                }
                t.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    };

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    // Correctness from a worker thread.
                    assert!(msb_crypto::ct::eq(&base, &base));
                    assert!(!msb_crypto::ct::eq(&base, &diff_first));
                    assert!(!msb_crypto::ct::eq(&base, &diff_last));
                    // Warm up, then compare medians. The bound is very
                    // generous (8×) to survive noisy CI machines; an
                    // early-exit memcmp differs by ~4 orders of magnitude
                    // at this input size.
                    let _ = median_ns(&diff_last, &base);
                    let early = median_ns(&diff_first, &base);
                    let late = median_ns(&diff_last, &base);
                    assert!(
                        early.saturating_mul(8) >= late,
                        "early-exit timing oracle: first-byte {early} ns vs last-byte {late} ns"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().expect("timing worker panicked");
        }
    });
}

/// The parallel Protocol-1 trial path (candidate keys tried across
/// worker threads) must be observationally identical to the sequential
/// loop — same outcome shape and same wire bytes — so enabling
/// parallelism introduces no new oracle for an adversary timing or
/// inspecting replies. Exercised on a collision-heavy modulus so the
/// responder holds many candidate keys, both for a below-threshold user
/// (all trials fail) and a matching user (one succeeds).
#[test]
fn parallel_p1_trials_byte_identical_to_sequential() {
    use sealed_bottle::core::protocol::Parallelism;
    let mut rng = StdRng::seed_from_u64(12);
    let words = vocab(8);
    let mut seq_config = ProtocolConfig::new(ProtocolKind::P1, 5); // p=5: many collisions
    seq_config.parallelism = Parallelism::SEQUENTIAL;
    let mut par_config = seq_config.clone();
    par_config.parallelism = Parallelism::new(8);

    let (_, pkg) = Initiator::create(&request_from(&words), 0, &seq_config, 0, &mut rng);

    let mut weak_attrs = vec![words[0].clone(), words[1].clone()];
    weak_attrs.extend((0..20).map(|i| Attribute::new("noise", format!("n{i}"))));
    let weak = Profile::from_attributes(weak_attrs);

    for profile in [matching_profile(&words), weak] {
        let seq_responder = Responder::new(3, profile.clone(), &seq_config);
        let par_responder = Responder::new(3, profile, &par_config);
        let mut seq_rng = StdRng::seed_from_u64(99);
        let mut par_rng = StdRng::seed_from_u64(99);
        let seq = seq_responder.handle(&pkg, 100, &mut seq_rng);
        let par = par_responder.handle(&pkg, 100, &mut par_rng);
        match (seq, par) {
            (
                ResponderOutcome::Reply { reply: ra, verified: va, stats: ta, .. },
                ResponderOutcome::Reply { reply: rb, verified: vb, stats: tb, .. },
            ) => {
                assert_eq!(ra.encode(), rb.encode(), "wire bytes must not depend on threading");
                assert_eq!(va, vb);
                assert_eq!(ta, tb);
            }
            (ResponderOutcome::NoVerifiedMatch, ResponderOutcome::NoVerifiedMatch)
            | (ResponderOutcome::NotCandidate, ResponderOutcome::NotCandidate) => {}
            (a, b) => panic!("outcome shape diverged: {a:?} vs {b:?}"),
        }
    }
}

/// Backend policy for the key-trial paths (docs/CRYPTO.md): wherever
/// candidate keys are compared — the Responder's Protocol-1 trial loop
/// and the Initiator's ack check — the constant-memory S-box oracle
/// must stay the default. The T-table backend (key-dependent cache
/// access) is opt-in only, via `MSB_AES_BACKEND=table`, and is always
/// fair game for adversary simulations (the attacker has no key
/// material of its own to protect) and for bulk throughput paths the
/// operator explicitly opts into.
#[test]
fn sbox_oracle_is_the_default_for_candidate_key_trials() {
    use msb_crypto::aes::CipherBackend;

    // The type-level default is the oracle…
    assert_eq!(CipherBackend::default(), CipherBackend::Sbox);
    // …and so is every unset/empty/unrecognised environment value. The
    // pure helper mirrors exactly what `from_env` caches, so this also
    // pins the parsing the CI backend sweep relies on.
    for sbox in [None, Some(""), Some("0"), Some("fast"), Some("tables!")] {
        assert_eq!(CipherBackend::from_env_value(sbox), CipherBackend::Sbox);
    }
    for (value, want) in [
        ("sbox", CipherBackend::Sbox),
        ("S-Box", CipherBackend::Sbox),
        ("table", CipherBackend::Table),
        ("T-Table", CipherBackend::Table),
        ("TTABLE", CipherBackend::Table),
    ] {
        assert_eq!(CipherBackend::from_env_value(Some(value)), want);
    }

    // The trial paths take their backend from `ProtocolConfig`, which is
    // seeded from the environment the same way `MSB_THREADS` seeds
    // `parallelism` — never silently upgraded elsewhere.
    let config = ProtocolConfig::new(ProtocolKind::P1, 11);
    assert_eq!(config.cipher_backend, CipherBackend::from_env());
}

/// Sweeping the AES backend across the candidate-trial path must change
/// nothing observable: same outcome shape, same verified set, same wire
/// bytes, and a reply produced under one backend opens under the other.
/// This is what makes the T-table opt-in safe to enable per deployment
/// without re-validating the protocol.
#[test]
fn backend_sweep_trial_path_byte_identical() {
    use msb_crypto::aes::CipherBackend;
    let mut rng = StdRng::seed_from_u64(21);
    let words = vocab(8);
    let mut sbox_config = ProtocolConfig::new(ProtocolKind::P1, 5); // p=5: many candidates
    sbox_config.cipher_backend = CipherBackend::Sbox;
    let mut table_config = sbox_config.clone();
    table_config.cipher_backend = CipherBackend::Table;

    let (mut initiator, pkg) =
        Initiator::create(&request_from(&words), 0, &sbox_config, 0, &mut rng);

    let mut weak_attrs = vec![words[0].clone(), words[1].clone()];
    weak_attrs.extend((0..20).map(|i| Attribute::new("noise", format!("n{i}"))));
    let weak = Profile::from_attributes(weak_attrs);

    for profile in [matching_profile(&words), weak] {
        let sbox_responder = Responder::new(3, profile.clone(), &sbox_config);
        let table_responder = Responder::new(3, profile, &table_config);
        let mut sbox_rng = StdRng::seed_from_u64(77);
        let mut table_rng = StdRng::seed_from_u64(77);
        match (
            sbox_responder.handle(&pkg, 100, &mut sbox_rng),
            table_responder.handle(&pkg, 100, &mut table_rng),
        ) {
            (
                ResponderOutcome::Reply { reply: ra, verified: va, stats: ta, .. },
                ResponderOutcome::Reply { reply: rb, verified: vb, stats: tb, .. },
            ) => {
                assert_eq!(ra.encode(), rb.encode(), "wire bytes must not depend on backend");
                assert_eq!(va, vb);
                assert_eq!(ta, tb);
                // The S-box initiator accepts the T-table responder's
                // reply: the backends interoperate on the wire.
                assert_eq!(initiator.process_reply(&rb, 1_000).len(), 1);
            }
            (ResponderOutcome::NoVerifiedMatch, ResponderOutcome::NoVerifiedMatch)
            | (ResponderOutcome::NotCandidate, ResponderOutcome::NotCandidate) => {}
            (a, b) => panic!("outcome shape diverged across backends: {a:?} vs {b:?}"),
        }
    }
}

/// DoS via request floods is contained by the per-sender rate guard
/// (paper §II-B), while legitimate traffic flows.
#[test]
fn request_flood_rate_limited() {
    use sealed_bottle::net::guard::RateGuard;
    let mut guard: RateGuard<u32> = RateGuard::new(1_000_000, 3);
    let attacker = 666u32;
    let honest = 7u32;
    let mut allowed = 0;
    for t in 0..100u64 {
        if guard.allow(attacker, t * 1_000) {
            allowed += 1;
        }
    }
    assert_eq!(allowed, 3, "attacker capped at the window budget");
    assert!(guard.allow(honest, 50_000), "honest senders unaffected");
}
