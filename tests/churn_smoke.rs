//! Churn-scenario runs over the pluggable event engine.
//!
//! Three layers of assurance, completing the scheduler differential
//! story (`crates/net/tests/sched_differential.rs` covers the event
//! and trace levels):
//!
//! 1. an application-level differential — the full friending flow with
//!    re-flooding under mobility must be *bit-identical* between the
//!    calendar-queue scheduler and the binary heap, across every
//!    protocol (P1/P2/P3) × batched/unbatched delivery ×
//!    `InMemory`/`EncodedFrames` transport: same per-node event logs,
//!    same matches, same metrics (*including* the new
//!    `events_scheduled` / `peak_queue_len` counters), same final
//!    clock;
//! 2. a mid-scale churn differential over the shared island scenario
//!    ([`msb_bench::swarm::ChurnSpec`]), proving the engines agree
//!    when mobility, re-flood timers, and fan-out-capped broadcasts
//!    interleave for real;
//! 3. an `#[ignore]`d release-mode smoke test (run explicitly in CI)
//!    proving a 25 000-node churn swarm — calendar scheduler, encoded
//!    frames — completes in bounded time with cross-island matches.

use msb_bench::swarm::{build_churn_swarm, drive_churn, ChurnSpec};
use sealed_bottle::core::app::RefloodPolicy;
use sealed_bottle::core::protocol::Parallelism;
use sealed_bottle::net::mobility::{Bounds, RandomWaypoint};
use sealed_bottle::net::sim::{Metrics, SchedulerMode};
use sealed_bottle::prelude::*;
use std::time::Instant;

fn attr(c: &str, v: &str) -> Attribute {
    Attribute::new(c, v)
}

fn request() -> RequestProfile {
    RequestProfile::new(
        vec![attr("guild", "mapmakers")],
        vec![attr("i", "ink"), attr("i", "vellum"), attr("i", "stars")],
        2,
    )
    .unwrap()
}

fn matching_profile() -> Profile {
    Profile::from_attributes(vec![attr("guild", "mapmakers"), attr("i", "ink"), attr("i", "stars")])
}

fn noise(i: usize) -> Profile {
    Profile::from_attributes(vec![attr("hobby", &format!("h{i}")), attr("town", &format!("t{i}"))])
}

struct RunResult {
    metrics: Metrics,
    final_clock_us: u64,
    matches: Vec<ConfirmedMatch>,
    events: Vec<Vec<AppEvent>>,
}

/// A lossy 4×4 grid under random-waypoint churn with re-flooding: two
/// matching users start out of radio reach of the whole grid and only
/// mobility + periodic re-broadcast can connect them. The same
/// scenario the wire differential uses, extended with the churn layer,
/// swept across scheduler modes.
fn run(
    scheduler: SchedulerMode,
    kind: ProtocolKind,
    delivery: DeliveryMode,
    batch_delivery: bool,
) -> RunResult {
    let mut config = ProtocolConfig::new(kind, 11);
    config.parallelism = Parallelism::SEQUENTIAL;
    config.validity_us = 5_000_000;
    let sim_config =
        SimConfig { loss_rate: 0.02, scheduler, delivery, batch_delivery, ..SimConfig::default() };
    let mut sim = Simulator::new(sim_config, 0xC0DEC);
    let reflood = RefloodPolicy::every(400_000).with_fanout_cap(3);
    let mut positions: Vec<(f64, f64)> = vec![(0.0, 0.0)];
    sim.add_node(
        positions[0],
        FriendingApp::initiator(noise(0), request(), config.clone()).with_reflood(reflood),
    );
    for i in 0..16 {
        let pos = ((i % 4) as f64 * 35.0, (i / 4) as f64 * 35.0 + 35.0);
        positions.push(pos);
        sim.add_node(
            pos,
            FriendingApp::participant(noise(i + 1), config.clone()).with_reflood(reflood),
        );
    }
    for &pos in &[(165.0, 40.0), (165.0, 160.0)] {
        positions.push(pos);
        sim.add_node(
            pos,
            FriendingApp::participant(matching_profile(), config.clone()).with_reflood(reflood),
        );
    }
    let mut mobility = RandomWaypoint::from_positions(
        positions,
        Bounds { width: 260.0, height: 200.0 },
        6.0,
        20.0,
        0.5,
        0x5eed,
    );
    sim.start();
    let mut buf = Vec::new();
    for tick in 1..=20u64 {
        sim.run_until(tick * 250_000);
        mobility.advance(0.25);
        mobility.positions_into(&mut buf);
        sim.set_positions(&buf);
    }
    sim.run();
    RunResult {
        metrics: *sim.metrics(),
        final_clock_us: sim.now_us(),
        matches: sim.app(NodeId::new(0)).matches().to_vec(),
        events: (0..sim.node_count())
            .map(|i| sim.app(NodeId::new(i as u32)).events.clone())
            .collect(),
    }
}

/// The calendar engine matches the binary-heap oracle across every
/// protocol × batching × transport combination — no metrics masking,
/// the new queue counters included.
#[test]
fn calendar_matches_heap_across_protocols_batching_and_delivery() {
    for kind in [ProtocolKind::P1, ProtocolKind::P2, ProtocolKind::P3] {
        for batch_delivery in [false, true] {
            for delivery in [DeliveryMode::InMemory, DeliveryMode::EncodedFrames] {
                let oracle = run(SchedulerMode::BinaryHeap, kind, delivery, batch_delivery);
                let calendar = run(SchedulerMode::Calendar, kind, delivery, batch_delivery);
                let label = format!("{kind:?} batch={batch_delivery} delivery={delivery:?}");
                assert!(!oracle.matches.is_empty(), "{label}: churn scenario must produce matches");
                assert!(
                    oracle.events.iter().flatten().any(|e| matches!(e, AppEvent::Reflooded { .. })),
                    "{label}: re-flooding must fire"
                );
                assert_eq!(calendar.events, oracle.events, "{label}: per-node event logs diverged");
                assert_eq!(calendar.matches, oracle.matches, "{label}: matches diverged");
                assert_eq!(
                    calendar.final_clock_us, oracle.final_clock_us,
                    "{label}: final clock diverged"
                );
                assert_eq!(calendar.metrics, oracle.metrics, "{label}: metrics diverged");
            }
        }
    }
}

/// The shared island scenario agrees across engines at test scale:
/// same summary, same metrics, same confirmed matches.
#[test]
fn churn_scenario_identical_across_scheduler_modes() {
    let collect = |scheduler: SchedulerMode| {
        let spec = ChurnSpec::standard(500, scheduler);
        let (mut sim, mut mobility) = build_churn_swarm(&spec);
        drive_churn(&mut sim, &mut mobility, &spec);
        let matches = sim.app(NodeId::new(0)).matches().to_vec();
        (SwarmSummary::collect(&sim), *sim.metrics(), sim.now_us(), matches)
    };
    let calendar = collect(SchedulerMode::Calendar);
    let heap = collect(SchedulerMode::BinaryHeap);
    assert_eq!(calendar, heap, "island churn diverged across engines");
    assert!(calendar.0.refloods > 0, "re-flooding must fire: {:?}", calendar.0);
    assert!(!calendar.3.is_empty(), "churn swarm must confirm matches");
}

/// Large-swarm release-mode churn smoke: 25 000 nodes on partitioned
/// islands, calendar scheduler, every message encoded into its
/// canonical frame and strictly decoded at each receiver.
/// `#[ignore]`d so plain `cargo test` stays fast; CI runs it via
/// `cargo test --release -q --test churn_smoke -- --ignored`.
#[test]
#[ignore = "release-mode large-swarm churn smoke, run explicitly (CI does)"]
fn churn_25k_completes_in_bounded_time() {
    let mut spec = ChurnSpec::standard(25_000, SchedulerMode::Calendar);
    spec.delivery = DeliveryMode::EncodedFrames;
    let started = Instant::now();
    let (mut sim, mut mobility) = build_churn_swarm(&spec);
    drive_churn(&mut sim, &mut mobility, &spec);
    let elapsed = started.elapsed();
    let summary = SwarmSummary::collect(&sim);
    let metrics = sim.metrics();
    assert!(summary.matches > 0, "25k churn swarm found no matches: {summary:?}");
    assert!(summary.refloods > 10_000, "re-flooding must run swarm-wide: {summary:?}");
    let matches = sim.app(NodeId::new(0)).matches();
    let cross_island =
        matches.iter().filter(|m| !(m.responder as usize).is_multiple_of(spec.islands)).count();
    assert!(cross_island > 0, "churn must produce cross-island matches");
    assert!(metrics.peak_queue_len > 10_000, "queue pressure must be observable: {metrics:?}");
    // No decode failures anywhere: every re-flooded frame round-trips.
    for i in 0..sim.node_count() {
        assert!(
            !sim.app(NodeId::new(i as u32))
                .events
                .iter()
                .any(|e| matches!(e, AppEvent::DecodeFailed { .. })),
            "node {i} rejected a canonical frame"
        );
    }
    // Generous wall-clock bound: catches an accidental O(n) scheduler
    // or spatial regression without flaking on slow CI.
    assert!(elapsed.as_secs() < 300, "25k churn swarm took {elapsed:?}");
    println!(
        "25k churn: wall {elapsed:?}, {} matches ({} cross-island, p50 {:?} us), \
         {} refloods, peak queue {}",
        summary.matches,
        cross_island,
        summary.latency_percentile_us(0.5),
        summary.refloods,
        metrics.peak_queue_len,
    );
}
