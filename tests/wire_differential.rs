//! Encoded-frame delivery vs the in-memory oracle.
//!
//! Under `DeliveryMode::InMemory` (the default) message structs ride
//! the event queue unserialized; under `DeliveryMode::EncodedFrames`
//! every message is encoded into its canonical `msb-wire` frame at the
//! sender and strictly decoded at each receiver. The two runs of the
//! same seed must be indistinguishable at the application level:
//! identical per-node event logs (same recipients in the same order),
//! identical confirmed matches, identical final clock — and identical
//! `Metrics`, *including* `payload_bytes`, which simultaneously proves
//! that `encoded_len()` is exact (the in-memory accounting) and that
//! the codec round-trips every message the protocols produce (the
//! encoded path would diverge otherwise).

use sealed_bottle::core::protocol::Parallelism;
use sealed_bottle::net::sim::Metrics;
use sealed_bottle::prelude::*;

fn attr(c: &str, v: &str) -> Attribute {
    Attribute::new(c, v)
}

fn request() -> RequestProfile {
    RequestProfile::new(
        vec![attr("craft", "cartography")],
        vec![attr("i", "ink"), attr("i", "vellum"), attr("i", "stars")],
        2,
    )
    .unwrap()
}

fn matching_profile() -> Profile {
    Profile::from_attributes(vec![
        attr("craft", "cartography"),
        attr("i", "ink"),
        attr("i", "stars"),
    ])
}

fn noise(i: usize) -> Profile {
    Profile::from_attributes(vec![attr("hobby", &format!("h{i}")), attr("town", &format!("t{i}"))])
}

struct RunResult {
    metrics: Metrics,
    final_clock_us: u64,
    matches: Vec<ConfirmedMatch>,
    events: Vec<Vec<AppEvent>>,
}

/// A lossy 4×4 grid with two matching users several hops out — the same
/// shape the determinism suite uses, here swept across delivery modes.
fn run(kind: ProtocolKind, delivery: DeliveryMode, batch_delivery: bool) -> RunResult {
    let mut config = ProtocolConfig::new(kind, 11);
    config.parallelism = Parallelism::SEQUENTIAL;
    let sim_config =
        SimConfig { loss_rate: 0.02, delivery, batch_delivery, ..SimConfig::default() };
    let mut sim = Simulator::new(sim_config, 0xC0DEC);
    sim.add_node((0.0, 0.0), FriendingApp::initiator(noise(0), request(), config.clone()));
    for i in 0..16 {
        let pos = ((i % 4) as f64 * 35.0, (i / 4) as f64 * 35.0 + 35.0);
        sim.add_node(pos, FriendingApp::participant(noise(i + 1), config.clone()));
    }
    sim.add_node((35.0, 175.0), FriendingApp::participant(matching_profile(), config.clone()));
    sim.add_node((105.0, 175.0), FriendingApp::participant(matching_profile(), config.clone()));
    sim.start();
    sim.run();
    RunResult {
        metrics: *sim.metrics(),
        final_clock_us: sim.now_us(),
        matches: sim.app(NodeId::new(0)).matches().to_vec(),
        events: (0..sim.node_count())
            .map(|i| sim.app(NodeId::new(i as u32)).events.clone())
            .collect(),
    }
}

#[test]
fn encoded_frames_match_the_in_memory_oracle() {
    for kind in [ProtocolKind::P1, ProtocolKind::P2, ProtocolKind::P3] {
        for batch_delivery in [false, true] {
            let oracle = run(kind, DeliveryMode::InMemory, batch_delivery);
            assert!(!oracle.matches.is_empty(), "{kind:?}: scenario must produce matches");

            let framed = run(kind, DeliveryMode::EncodedFrames, batch_delivery);
            assert_eq!(
                framed.events, oracle.events,
                "{kind:?} batch={batch_delivery}: per-node event logs diverged"
            );
            assert_eq!(framed.matches, oracle.matches, "{kind:?}: confirmed matches diverged");
            assert_eq!(framed.final_clock_us, oracle.final_clock_us, "{kind:?}: clock diverged");
            assert_eq!(
                framed.metrics, oracle.metrics,
                "{kind:?} batch={batch_delivery}: metrics diverged — either encoded_len() is \
                 not exact or a message failed to round-trip"
            );
        }
    }
}

#[test]
fn byte_metrics_come_from_real_frames() {
    // In the encoded mode the accounted bytes are the actual buffers on
    // the air; spot-check the first broadcast's size against a freshly
    // encoded package of the same request.
    let oracle = run(ProtocolKind::P1, DeliveryMode::InMemory, false);
    let framed = run(ProtocolKind::P1, DeliveryMode::EncodedFrames, false);
    assert_eq!(oracle.metrics.payload_bytes, framed.metrics.payload_bytes);
    assert!(framed.metrics.payload_bytes > 0);

    // No decode failures anywhere: every frame the protocols produced
    // was strictly decodable.
    for (i, events) in framed.events.iter().enumerate() {
        assert!(
            !events.iter().any(|e| matches!(e, AppEvent::DecodeFailed { .. })),
            "node {i} rejected a canonical frame: {events:?}"
        );
    }
}
