//! Golden wire-format regression tests.
//!
//! The canonical encoding of every message kind is pinned byte-for-byte
//! by hex fixtures under `tests/fixtures/`. Any change to the frame
//! envelope or a message body layout fails here loudly; intentional
//! format changes must bump [`sealed_bottle::wire::VERSION`] and
//! regenerate the fixtures with
//!
//! ```text
//! MSB_REGEN_FIXTURES=1 cargo test --test wire_golden
//! ```

mod wire_common;

use sealed_bottle::core::package::{Reply, RequestPackage};
use sealed_bottle::dataset::weibo::{WeiboDataset, WeiboUser};
use sealed_bottle::server::{
    Ack, Deposit, Fetch, Hello, InboxBatch, MetricsDump, MetricsReq, StatsReq, StatsSnapshot,
};
use sealed_bottle::wire::{peek_kind, FrameKind, Message, FRAME_HEADER_LEN, MAGIC, VERSION};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(format!("{name}.hex"))
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2 + bytes.len() / 32 + 1);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            s.push('\n');
        }
        s.push_str(&format!("{b:02x}"));
    }
    s.push('\n');
    s
}

fn from_hex(text: &str) -> Vec<u8> {
    let compact: String = text.chars().filter(|c| c.is_ascii_hexdigit()).collect();
    assert!(compact.len().is_multiple_of(2), "odd hex digit count");
    (0..compact.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&compact[i..i + 2], 16).expect("hex"))
        .collect()
}

fn load_or_regen(name: &str, encoded: &[u8]) -> Vec<u8> {
    let path = fixture_path(name);
    if std::env::var_os("MSB_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, to_hex(encoded)).expect("write fixture");
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); regenerate with \
             MSB_REGEN_FIXTURES=1 cargo test --test wire_golden"
        )
    });
    from_hex(&text)
}

/// Every fixture matches the current encoder bit-for-bit.
#[test]
fn encodings_match_golden_fixtures() {
    for (name, encoded) in wire_common::all_fixtures() {
        let golden = load_or_regen(name, &encoded);
        assert_eq!(
            encoded, golden,
            "{name}: wire format drifted from the committed fixture \
             (intentional changes must bump the wire VERSION and regenerate)"
        );
    }
}

/// Every fixture decodes back to the expected message and re-encodes to
/// the identical bytes.
#[test]
fn fixtures_roundtrip_bit_identically() {
    let golden = |name: &str, encoded: &[u8]| load_or_regen(name, encoded);

    let p1 = wire_common::request_p1_exact();
    let bytes = golden("request_p1_exact", &p1.encode());
    let decoded = RequestPackage::decode(&bytes).unwrap();
    assert_eq!(decoded, p1);
    assert_eq!(decoded.encode(), bytes);

    let p2 = wire_common::request_p2_cauchy();
    let bytes = golden("request_p2_cauchy", &p2.encode());
    let decoded = RequestPackage::decode(&bytes).unwrap();
    assert_eq!(decoded, p2);
    assert_eq!(decoded.encode(), bytes);

    let p3 = wire_common::request_p3_random();
    let bytes = golden("request_p3_random", &p3.encode());
    let decoded = RequestPackage::decode(&bytes).unwrap();
    assert_eq!(decoded, p3);
    assert_eq!(decoded.encode(), bytes);

    let reply = wire_common::reply_two_acks();
    let bytes = golden("reply_two_acks", &Message::encode(&reply));
    let decoded = Reply::decode(&bytes).unwrap();
    assert_eq!(decoded, reply);
    assert_eq!(Message::encode(&decoded), bytes);

    let user = wire_common::weibo_user();
    let bytes = golden("weibo_user", &Message::encode(&user));
    let decoded = WeiboUser::decode(&bytes).unwrap();
    assert_eq!(decoded, user);
    assert_eq!(Message::encode(&decoded), bytes);

    let dataset = wire_common::weibo_dataset();
    let bytes = golden("weibo_dataset", &Message::encode(&dataset));
    let decoded = WeiboDataset::decode(&bytes).unwrap();
    assert_eq!(decoded, dataset);
    assert_eq!(Message::encode(&decoded), bytes);

    let hello = wire_common::relay_hello();
    let bytes = golden("relay_hello", &Message::encode(&hello));
    let decoded = Hello::decode(&bytes).unwrap();
    assert_eq!(decoded, hello);
    assert_eq!(Message::encode(&decoded), bytes);

    let deposit = wire_common::relay_deposit();
    let bytes = golden("relay_deposit", &Message::encode(&deposit));
    let decoded = Deposit::decode(&bytes).unwrap();
    assert_eq!(decoded, deposit);
    assert_eq!(Message::encode(&decoded), bytes);

    let fetch = wire_common::relay_fetch();
    let bytes = golden("relay_fetch", &Message::encode(&fetch));
    let decoded = Fetch::decode(&bytes).unwrap();
    assert_eq!(decoded, fetch);
    assert_eq!(Message::encode(&decoded), bytes);

    let inbox = wire_common::relay_inbox();
    let bytes = golden("relay_inbox", &Message::encode(&inbox));
    let decoded = InboxBatch::decode(&bytes).unwrap();
    assert_eq!(decoded, inbox);
    assert_eq!(Message::encode(&decoded), bytes);

    let ack = wire_common::relay_ack();
    let bytes = golden("relay_ack", &Message::encode(&ack));
    let decoded = Ack::decode(&bytes).unwrap();
    assert_eq!(decoded, ack);
    assert_eq!(Message::encode(&decoded), bytes);

    let bytes = golden("relay_stats_req", &Message::encode(&StatsReq));
    let decoded = StatsReq::decode(&bytes).unwrap();
    assert_eq!(decoded, StatsReq);
    assert_eq!(Message::encode(&decoded), bytes);

    let stats = wire_common::relay_stats();
    let bytes = golden("relay_stats", &Message::encode(&stats));
    let decoded = StatsSnapshot::decode(&bytes).unwrap();
    assert_eq!(decoded, stats);
    assert_eq!(Message::encode(&decoded), bytes);

    let bytes = golden("relay_metrics_req", &Message::encode(&MetricsReq));
    let decoded = MetricsReq::decode(&bytes).unwrap();
    assert_eq!(decoded, MetricsReq);
    assert_eq!(Message::encode(&decoded), bytes);

    let dump = wire_common::relay_metrics_dump();
    let bytes = golden("relay_metrics_dump", &Message::encode(&dump));
    let decoded = MetricsDump::decode(&bytes).unwrap();
    assert_eq!(decoded, dump);
    assert_eq!(Message::encode(&decoded), bytes);
}

/// The envelope of every fixture is the documented 10-byte header.
#[test]
fn fixture_envelopes_are_canonical() {
    let expected_kinds = [
        FrameKind::Request,
        FrameKind::Request,
        FrameKind::Request,
        FrameKind::Reply,
        FrameKind::WeiboUser,
        FrameKind::WeiboDataset,
        FrameKind::RelayHello,
        FrameKind::RelayDeposit,
        FrameKind::RelayFetch,
        FrameKind::RelayInbox,
        FrameKind::RelayAck,
        FrameKind::RelayStatsReq,
        FrameKind::RelayStats,
        FrameKind::RelayMetricsReq,
        FrameKind::RelayMetricsDump,
    ];
    let fixtures = wire_common::all_fixtures();
    assert_eq!(fixtures.len(), expected_kinds.len(), "fixture/kind lists out of sync");
    for ((name, encoded), kind) in fixtures.into_iter().zip(expected_kinds) {
        assert_eq!(&encoded[..4], &MAGIC, "{name}: magic");
        assert_eq!(encoded[4], VERSION, "{name}: version");
        assert_eq!(encoded[5], kind as u8, "{name}: kind byte");
        let declared = u32::from_be_bytes(encoded[6..10].try_into().unwrap()) as usize;
        assert_eq!(declared, encoded.len() - FRAME_HEADER_LEN, "{name}: length field");
        assert_eq!(peek_kind(&encoded), Ok(kind), "{name}: peek");
    }
}
