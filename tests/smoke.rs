//! Workspace smoke test: Protocol 1 end to end through the
//! `sealed_bottle::prelude` facade with a fixed seed.
//!
//! This exists to guard the root manifest and the facade re-exports: if
//! a crate drops out of the workspace, a prelude re-export breaks, or
//! the protocol stops round-tripping, this fails before anything subtle
//! does.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sealed_bottle::prelude::*;

#[test]
fn protocol1_roundtrip_with_fixed_seed() {
    let mut rng = StdRng::seed_from_u64(0xB0771E);
    let config = ProtocolConfig::new(ProtocolKind::P1, 11);

    let request = RequestProfile::new(
        vec![Attribute::new("guild", "navigators")],
        vec![
            Attribute::new("interest", "charts"),
            Attribute::new("interest", "tides"),
            Attribute::new("interest", "stars"),
        ],
        2,
    )
    .expect("well-formed request");
    let (mut initiator, package) = Initiator::create(&request, 0, &config, 0, &mut rng);

    // A responder owning the necessary attribute and two of the three
    // optional ones satisfies the θ-threshold and must decrypt.
    let responder = Responder::new(
        1,
        Profile::from_attributes(vec![
            Attribute::new("guild", "navigators"),
            Attribute::new("interest", "charts"),
            Attribute::new("interest", "stars"),
        ]),
        &config,
    );
    let ResponderOutcome::Reply { reply, sessions, .. } =
        responder.handle(&package, 1_000, &mut rng)
    else {
        panic!("matching responder must open the bottle and reply");
    };

    let matches = initiator.process_reply(&reply, 2_000);
    assert_eq!(matches.len(), 1, "initiator must confirm exactly one match");
    assert_eq!(matches[0].responder, 1);

    // Both sides now share (x, y): the derived channels interoperate.
    let mut a = initiator.pair_channel(&matches[0]);
    let mut b = sessions[0].channel();
    let frame = a.seal(b"message in a sealed bottle");
    assert_eq!(b.open(&frame).expect("authentic frame"), b"message in a sealed bottle");

    // A non-matching responder must not produce a confirmable reply.
    let stranger = Responder::new(
        2,
        Profile::from_attributes(vec![Attribute::new("interest", "charts")]),
        &config,
    );
    // Dropping the request outright is equally fine; only a confirmable
    // reply would be a break.
    if let ResponderOutcome::Reply { reply, .. } = stranger.handle(&package, 1_000, &mut rng) {
        assert!(
            initiator.process_reply(&reply, 2_000).is_empty(),
            "stranger reply must not confirm"
        );
    }
}

/// Every prelude surface referenced by downstream docs stays exported.
#[test]
fn prelude_reexports_resolve() {
    // Pure type-level references: this test fails at compile time if a
    // facade re-export disappears.
    fn assert_exists<T>() {}
    assert_exists::<ProtocolConfig>();
    assert_exists::<ProtocolKind>();
    assert_exists::<ConfirmedMatch>();
    assert_exists::<RequestPackage>();
    assert_exists::<Reply>();
    assert_exists::<SecureChannel>();
    assert_exists::<GroupChannel>();
    assert_exists::<Role>();
    assert_exists::<LatticeConfig>();
    assert_exists::<VicinityRegion>();
    assert_exists::<SimConfig>();
    assert_exists::<NodeId>();
    assert_exists::<Attribute>();
    assert_exists::<Profile>();
    assert_exists::<ProfileKey>();
    assert_exists::<ProfileVector>();
    assert_exists::<RequestProfile>();
    assert_exists::<RequestVector>();
    assert_exists::<FriendingApp>();
    assert_exists::<AppEvent>();
}
