//! Shared deterministic message constructions for the wire-format test
//! suites (golden fixtures, fuzz). Everything here is built from
//! *literal* values — no RNG, no hashing — so the expected structs (and
//! therefore the golden bytes) cannot drift when unrelated generation
//! code changes.

use bytes::Bytes;
use sealed_bottle::bignum::linalg::Matrix;
use sealed_bottle::bignum::BigUint;
use sealed_bottle::core::package::{Reply, RequestPackage};
use sealed_bottle::dataset::weibo::{WeiboConfig, WeiboDataset, WeiboUser};
use sealed_bottle::profile::hint::{HintConstruction, HintMatrix};
use sealed_bottle::profile::remainder::RemainderVector;
use sealed_bottle::server::{
    Ack, AckCode, Delivered, Deposit, Fetch, Hello, InboxBatch, MetricsDump, MetricsReq, StatsReq,
    StatsSnapshot,
};
use sealed_bottle::telemetry::LogHistogram;
use sealed_bottle::wire::Message;

fn fe(seed: u64) -> BigUint {
    // A small, trivially canonical field element.
    BigUint::from_limbs(vec![seed])
}

/// Protocol 1, perfect match: no hint section.
pub fn request_p1_exact() -> RequestPackage {
    RequestPackage {
        kind: 1,
        initiator: 7,
        ttl: 8,
        expires_us: 60_000_000,
        remainder: RemainderVector::from_remainders(11, vec![3, 7], vec![], 0),
        hint: None,
        nonce: *b"0123456789abcdef",
        ciphertext: (0..48).collect(),
    }
}

/// Protocol 2, fuzzy with the default Cauchy hint (R not transmitted).
pub fn request_p2_cauchy() -> RequestPackage {
    RequestPackage {
        kind: 2,
        initiator: 0xDEAD_BEEF,
        ttl: 3,
        expires_us: u64::MAX,
        remainder: RemainderVector::from_remainders(23, vec![5], vec![1, 8, 13, 21], 3),
        hint: Some(HintMatrix::from_parts(3, HintConstruction::Cauchy, None, vec![fe(99)])),
        nonce: [0xA5; 16],
        ciphertext: vec![0x42; 32],
    }
}

/// Protocol 3, fuzzy with the paper's literal Random construction
/// (γ×β R block on the wire).
pub fn request_p3_random() -> RequestPackage {
    let gamma = 2;
    let beta = 2;
    let r_block = Matrix::from_rows(vec![vec![fe(2), fe(3)], vec![fe(5), fe(7)]]);
    RequestPackage {
        kind: 3,
        initiator: 1,
        ttl: 1,
        expires_us: 1_234_567,
        remainder: RemainderVector::from_remainders(11, vec![], vec![2, 4, 6, 8], beta),
        hint: Some(HintMatrix::from_parts(
            beta,
            HintConstruction::Random,
            Some(r_block),
            vec![fe(11), fe(13)],
        )),
        nonce: [0; 16],
        ciphertext: vec![0xFF; 32],
    }
    .tap_assert_gamma(gamma)
}

/// A reply with two acknowledgements of the honest 56-byte shape.
pub fn reply_two_acks() -> Reply {
    Reply {
        request_id: *b"request-id-request-id-request-id",
        responder: 42,
        acks: vec![(0..56).collect(), (100..156).collect()],
    }
}

/// A literal dataset user.
pub fn weibo_user() -> WeiboUser {
    WeiboUser {
        id: 31_337,
        birth_year: 1990,
        female: true,
        tags: vec![3, 17, 560_000],
        keywords: vec![1, 2, 9, 713_000],
    }
}

/// A tiny literal dataset (config + two users).
pub fn weibo_dataset() -> WeiboDataset {
    WeiboDataset::from_parts(
        WeiboConfig { users: 2, ..WeiboConfig::default() },
        vec![
            weibo_user(),
            WeiboUser { id: 2, birth_year: 2001, female: false, tags: vec![6], keywords: vec![] },
        ],
    )
}

/// A relay registration for a literal client id.
pub fn relay_hello() -> Hello {
    Hello { client: 7 }
}

/// A unicast deposit carrying a literal (not itself decodable) inner
/// frame — the relay treats the bottle as opaque bytes.
pub fn relay_deposit() -> Deposit {
    Deposit { to: 0xDEAD_BEEF, frame: Bytes::from((0u8..24).collect::<Vec<u8>>()) }
}

/// A bounded fetch.
pub fn relay_fetch() -> Fetch {
    Fetch { max: 3 }
}

/// An inbox batch with two delivered bottles from distinct senders.
pub fn relay_inbox() -> InboxBatch {
    InboxBatch {
        messages: vec![
            Delivered { from: 1, frame: Bytes::from(vec![0x42; 16]) },
            Delivered { from: 0xFFFF_FFFE, frame: Bytes::from((200u8..248).collect::<Vec<u8>>()) },
        ],
    }
}

/// A rejecting acknowledgement (the error arm exercises the status
/// byte).
pub fn relay_ack() -> Ack {
    Ack { code: AckCode::RateLimited, info: 99 }
}

/// A stats snapshot with twelve distinct literal gauges so any field
/// reordering breaks the fixture (v2: reframe_rejects + guard_sheds).
pub fn relay_stats() -> StatsSnapshot {
    StatsSnapshot {
        frames_in: 1,
        frames_out: 2,
        deposits_accepted: 3,
        rejected_rate: 4,
        rejected_oversize: 5,
        rejected_malformed: 6,
        messages_delivered: 7,
        inbox_expired: 8,
        inbox_depth: 9,
        registered_clients: 10,
        reframe_rejects: 11,
        guard_sheds: 12,
    }
}

/// A metrics dump with literal service-time samples: the deposit
/// histogram spans several buckets (including 0 and a shared bucket),
/// the fetch histogram is empty — pinning the sparse encoding of both
/// the occupied and the degenerate case.
pub fn relay_metrics_dump() -> MetricsDump {
    let mut dep = LogHistogram::new();
    for v in [0u64, 3, 40, 41, 1000] {
        dep.record(v);
    }
    MetricsDump {
        stats: relay_stats(),
        inbox_depth_peak: 13,
        deposit_service_us: dep,
        fetch_service_us: LogHistogram::new(),
    }
}

/// Every framed message kind, with its fixture name and encoded frame.
pub fn all_fixtures() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("request_p1_exact", request_p1_exact().encode()),
        ("request_p2_cauchy", request_p2_cauchy().encode()),
        ("request_p3_random", request_p3_random().encode()),
        ("reply_two_acks", Message::encode(&reply_two_acks())),
        ("weibo_user", Message::encode(&weibo_user())),
        ("weibo_dataset", Message::encode(&weibo_dataset())),
        ("relay_hello", Message::encode(&relay_hello())),
        ("relay_deposit", Message::encode(&relay_deposit())),
        ("relay_fetch", Message::encode(&relay_fetch())),
        ("relay_inbox", Message::encode(&relay_inbox())),
        ("relay_ack", Message::encode(&relay_ack())),
        ("relay_stats_req", Message::encode(&StatsReq)),
        ("relay_stats", Message::encode(&relay_stats())),
        ("relay_metrics_req", Message::encode(&MetricsReq)),
        ("relay_metrics_dump", Message::encode(&relay_metrics_dump())),
    ]
}

trait TapAssertGamma {
    fn tap_assert_gamma(self, gamma: usize) -> Self;
}

impl TapAssertGamma for RequestPackage {
    fn tap_assert_gamma(self, gamma: usize) -> Self {
        assert_eq!(self.remainder.gamma(), gamma, "fixture shape drifted");
        assert_eq!(self.hint.as_ref().map(HintMatrix::gamma), Some(gamma));
        self
    }
}
