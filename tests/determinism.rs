//! Simulator determinism guards for the parallel responder path.
//!
//! The event queue orders by `(time, (source, emission))` content keys
//! and all randomness flows from per-node RNG streams derived from one
//! seed (`docs/SIM.md` §1), so a run is a pure function of `(seed,
//! SimConfig, apps)`. Responder parallelism must not perturb that: the
//! parallel enumeration is bit-identical to the sequential one and draws
//! no randomness, so the same seed and the same `SimConfig` must produce
//! identical `Metrics` — and identical confirmed matches — for every
//! thread count, with batch delivery on or off.

use sealed_bottle::core::protocol::Parallelism;
use sealed_bottle::net::sim::Metrics;
use sealed_bottle::prelude::*;

fn attr(c: &str, v: &str) -> Attribute {
    Attribute::new(c, v)
}

fn request() -> RequestProfile {
    RequestProfile::new(
        vec![attr("craft", "glassblowing")],
        vec![attr("i", "sand"), attr("i", "fire"), attr("i", "breath")],
        2,
    )
    .unwrap()
}

fn matching_profile() -> Profile {
    Profile::from_attributes(vec![
        attr("craft", "glassblowing"),
        attr("i", "sand"),
        attr("i", "fire"),
    ])
}

fn noise(i: usize) -> Profile {
    Profile::from_attributes(vec![attr("hobby", &format!("h{i}")), attr("town", &format!("t{i}"))])
}

/// A lossy 4×4 grid with two matching users several hops out.
fn run(parallelism: Parallelism, batch_delivery: bool) -> (Metrics, u64, Vec<ConfirmedMatch>) {
    let mut config = ProtocolConfig::new(ProtocolKind::P2, 11);
    config.parallelism = parallelism;
    let sim_config = SimConfig { loss_rate: 0.02, batch_delivery, ..SimConfig::default() };
    let mut sim = Simulator::new(sim_config, 0xD57E);
    sim.add_node((0.0, 0.0), FriendingApp::initiator(noise(0), request(), config.clone()));
    for i in 0..16 {
        let pos = ((i % 4) as f64 * 35.0, (i / 4) as f64 * 35.0 + 35.0);
        sim.add_node(pos, FriendingApp::participant(noise(i + 1), config.clone()));
    }
    sim.add_node((35.0, 175.0), FriendingApp::participant(matching_profile(), config.clone()));
    sim.add_node((105.0, 175.0), FriendingApp::participant(matching_profile(), config.clone()));
    sim.start();
    sim.run();
    let matches = sim.app(NodeId::new(0)).matches().to_vec();
    (*sim.metrics(), sim.now_us(), matches)
}

/// Same seed + same `SimConfig` ⇒ identical `Metrics` (and matches, and
/// final clock) regardless of responder parallelism.
#[test]
fn metrics_independent_of_responder_parallelism() {
    for batch_delivery in [false, true] {
        let reference = run(Parallelism::SEQUENTIAL, batch_delivery);
        assert!(!reference.2.is_empty(), "the matching users must be found");
        for threads in [2usize, 4, 8] {
            let other = run(Parallelism::new(threads), batch_delivery);
            assert_eq!(other, reference, "batch={batch_delivery} threads={threads}: run diverged");
        }
    }
}

/// Batch delivery may regroup same-instant deliveries into coarser
/// `on_batch` calls but must not change who gets matched.
#[test]
fn batch_delivery_preserves_match_decisions() {
    let collect = |batch_delivery: bool| -> Vec<u32> {
        let mut config = ProtocolConfig::new(ProtocolKind::P1, 11);
        config.parallelism = Parallelism::new(4);
        let sim_config = SimConfig { batch_delivery, ..SimConfig::default() };
        let mut sim = Simulator::new(sim_config, 9);
        sim.add_node((0.0, 0.0), FriendingApp::initiator(noise(0), request(), config.clone()));
        for i in 1..5 {
            sim.add_node(
                (i as f64 * 40.0, 0.0),
                FriendingApp::participant(noise(i), config.clone()),
            );
        }
        sim.add_node((5.0 * 40.0, 0.0), FriendingApp::participant(matching_profile(), config));
        sim.start();
        sim.run();
        let mut ids: Vec<u32> =
            sim.app(NodeId::new(0)).matches().iter().map(|m| m.responder).collect();
        ids.sort_unstable();
        ids
    };
    let unbatched = collect(false);
    assert_eq!(unbatched, vec![5]);
    assert_eq!(collect(true), unbatched);
}

/// A same-instant burst of requests from distinct initiators exercises
/// the batched responder path (`Responder::handle_batch` behind
/// `FriendingApp::on_batch`): the app-visible results — events, gambled
/// sessions — must be identical to unbatched delivery and independent of
/// thread count. (Single node on purpose: batching only changes how
/// same-instant deliveries are grouped into `on_batch` calls, never the
/// per-message order or any RNG draw — per-node streams make grouping
/// invisible — so a lone responder pins exact byte equality across the
/// `batch_delivery` flag; cross-flag decision equality with neighbours
/// is covered above.)
#[test]
fn burst_batch_equals_one_at_a_time() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let run = |batch_delivery: bool, parallelism: Parallelism| {
        let mut config = ProtocolConfig::new(ProtocolKind::P2, 11);
        config.parallelism = parallelism;
        let sim_config = SimConfig { batch_delivery, ..SimConfig::default() };
        let mut sim = Simulator::new(sim_config, 4);
        let node =
            sim.add_node((0.0, 0.0), FriendingApp::participant(matching_profile(), config.clone()));
        let mut rng = StdRng::seed_from_u64(8);
        for i in 0..5u32 {
            // Distinct initiator ids: the burst must not trip the
            // per-initiator rate guard.
            let (_, pkg) = Initiator::create(&request(), 100 + i, &config, 0, &mut rng);
            sim.inject(node, NodeId::new(7), pkg.encode());
        }
        sim.run();
        let app = sim.app(node);
        let sessions: Vec<_> = app.sessions().iter().map(|s| (s.x, s.y)).collect();
        (app.events.clone(), sessions)
    };

    let reference = run(false, Parallelism::SEQUENTIAL);
    assert!(
        reference.0.iter().any(|e| matches!(e, AppEvent::ReplySent { .. })),
        "burst must produce replies: {:?}",
        reference.0
    );
    for (batch_delivery, threads) in [(false, 4), (true, 1), (true, 4), (true, 8)] {
        let other = run(batch_delivery, Parallelism::new(threads));
        assert_eq!(
            other, reference,
            "batch={batch_delivery} threads={threads}: burst handling diverged"
        );
    }
}
