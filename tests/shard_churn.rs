//! Churn-scenario runs over the spatially-sharded engine.
//!
//! The sharded complement of `churn_smoke.rs`, completing the shard
//! differential story (`crates/net/tests/shard_differential.rs` covers
//! the trace level):
//!
//! 1. an application-level differential — the full friending flow with
//!    re-flooding under mobility must be *bit-identical* between the
//!    single-threaded oracle and [`ShardedSimulator`] at 2/4/8 worker
//!    cores, across every protocol (P1/P2/P3) ×
//!    `InMemory`/`EncodedFrames` transport: same per-node event logs,
//!    same matches, same metrics (masking only `peak_queue_len`, the
//!    per-queue depth that legitimately varies with shard count), same
//!    final clock;
//! 2. a mid-scale churn differential over the shared island scenario
//!    ([`msb_bench::swarm::ChurnSpec`]) across shard counts;
//! 3. an `#[ignore]`d release-mode smoke test (run explicitly in CI)
//!    proving a 25 000-node churn swarm completes at `shards = 4` with
//!    the exact outcome of `shards = 1`.

use msb_bench::swarm::{build_churn_swarm, build_churn_swarm_sharded, drive_churn, ChurnSpec};
use sealed_bottle::core::app::RefloodPolicy;
use sealed_bottle::core::protocol::Parallelism;
use sealed_bottle::net::mobility::{Bounds, RandomWaypoint};
use sealed_bottle::net::sim::{Metrics, SchedulerMode};
use sealed_bottle::prelude::*;
use std::time::Instant;

fn attr(c: &str, v: &str) -> Attribute {
    Attribute::new(c, v)
}

fn request() -> RequestProfile {
    RequestProfile::new(
        vec![attr("guild", "mapmakers")],
        vec![attr("i", "ink"), attr("i", "vellum"), attr("i", "stars")],
        2,
    )
    .unwrap()
}

fn matching_profile() -> Profile {
    Profile::from_attributes(vec![attr("guild", "mapmakers"), attr("i", "ink"), attr("i", "stars")])
}

fn noise(i: usize) -> Profile {
    Profile::from_attributes(vec![attr("hobby", &format!("h{i}")), attr("town", &format!("t{i}"))])
}

#[derive(PartialEq, Debug)]
struct RunResult {
    /// `peak_queue_len` masked: per-queue depth is the one observable
    /// that legitimately depends on how many queues there are.
    metrics: Metrics,
    final_clock_us: u64,
    matches: Vec<ConfirmedMatch>,
    events: Vec<Vec<AppEvent>>,
}

/// The `churn_smoke` scenario — a lossy 4×4 grid under random-waypoint
/// churn with re-flooding, two matching users starting out of radio
/// reach — swept across shard counts instead of scheduler modes.
/// `shards == 1` runs the single-threaded oracle.
fn run(shards: usize, kind: ProtocolKind, delivery: DeliveryMode) -> RunResult {
    let mut config = ProtocolConfig::new(kind, 11);
    config.parallelism = Parallelism::SEQUENTIAL;
    config.validity_us = 5_000_000;
    let sim_config = SimConfig { loss_rate: 0.02, delivery, shards, ..SimConfig::default() };
    let reflood = RefloodPolicy::every(400_000).with_fanout_cap(3);
    let mut positions: Vec<(f64, f64)> = vec![(0.0, 0.0)];
    let mut apps =
        vec![FriendingApp::initiator(noise(0), request(), config.clone()).with_reflood(reflood)];
    for i in 0..16 {
        positions.push(((i % 4) as f64 * 35.0, (i / 4) as f64 * 35.0 + 35.0));
        apps.push(FriendingApp::participant(noise(i + 1), config.clone()).with_reflood(reflood));
    }
    for &pos in &[(165.0, 40.0), (165.0, 160.0)] {
        positions.push(pos);
        apps.push(
            FriendingApp::participant(matching_profile(), config.clone()).with_reflood(reflood),
        );
    }
    let mut mobility = RandomWaypoint::from_positions(
        positions.clone(),
        Bounds { width: 260.0, height: 200.0 },
        6.0,
        20.0,
        0.5,
        0x5eed,
    );
    let nodes = positions.iter().copied().zip(apps);

    let drive = |sim: &mut dyn SimDriver, mobility: &mut RandomWaypoint| {
        sim.start();
        let mut buf = Vec::new();
        for tick in 1..=20u64 {
            sim.run_until(tick * 250_000);
            mobility.advance(0.25);
            mobility.positions_into(&mut buf);
            sim.set_positions(&buf);
        }
        sim.run();
    };

    if shards == 1 {
        let mut sim = Simulator::new(sim_config, 0xC0DEC);
        sim.add_nodes(nodes);
        drive(&mut sim, &mut mobility);
        RunResult {
            metrics: sim.metrics().without_queue_pressure(),
            final_clock_us: sim.now_us(),
            matches: sim.app(NodeId::new(0)).matches().to_vec(),
            events: (0..sim.node_count())
                .map(|i| sim.app(NodeId::new(i as u32)).events.clone())
                .collect(),
        }
    } else {
        let mut sim = ShardedSimulator::new(sim_config, 0xC0DEC);
        sim.add_nodes(nodes);
        drive(&mut sim, &mut mobility);
        RunResult {
            metrics: sim.metrics().without_queue_pressure(),
            final_clock_us: sim.now_us(),
            matches: sim.app(NodeId::new(0)).matches().to_vec(),
            events: (0..sim.node_count())
                .map(|i| sim.app(NodeId::new(i as u32)).events.clone())
                .collect(),
        }
    }
}

/// The sharded engine matches the single-threaded oracle across every
/// protocol × transport × shard-count combination.
#[test]
fn sharded_matches_oracle_across_protocols_and_delivery() {
    for kind in [ProtocolKind::P1, ProtocolKind::P2, ProtocolKind::P3] {
        for delivery in [DeliveryMode::InMemory, DeliveryMode::EncodedFrames] {
            let oracle = run(1, kind, delivery);
            assert!(
                !oracle.matches.is_empty(),
                "{kind:?} {delivery:?}: churn scenario must produce matches"
            );
            assert!(
                oracle.events.iter().flatten().any(|e| matches!(e, AppEvent::Reflooded { .. })),
                "{kind:?} {delivery:?}: re-flooding must fire"
            );
            for shards in [2usize, 4, 8] {
                let sharded = run(shards, kind, delivery);
                assert_eq!(
                    sharded, oracle,
                    "{kind:?} {delivery:?} shards={shards}: sharded run diverged from oracle"
                );
            }
        }
    }
}

/// The shared island scenario agrees across shard counts at test
/// scale: same summary, same masked metrics, same confirmed matches,
/// same final clock.
#[test]
fn island_churn_identical_across_shard_counts() {
    let oracle = {
        let spec = ChurnSpec::standard(500, SchedulerMode::Calendar);
        let (mut sim, mut mobility) = build_churn_swarm(&spec);
        drive_churn(&mut sim, &mut mobility, &spec);
        let matches = sim.app(NodeId::new(0)).matches().to_vec();
        (SwarmSummary::collect(&sim), sim.metrics().without_queue_pressure(), sim.now_us(), matches)
    };
    assert!(oracle.0.refloods > 0, "re-flooding must fire: {:?}", oracle.0);
    assert!(!oracle.3.is_empty(), "churn swarm must confirm matches");
    for shards in [2usize, 4, 8] {
        let spec = ChurnSpec::standard(500, SchedulerMode::Calendar).with_shards(shards);
        let (mut sim, mut mobility) = build_churn_swarm_sharded(&spec);
        drive_churn(&mut sim, &mut mobility, &spec);
        let matches = sim.app(NodeId::new(0)).matches().to_vec();
        let sharded = (
            SwarmSummary::collect_sharded(&sim),
            sim.metrics().without_queue_pressure(),
            sim.now_us(),
            matches,
        );
        assert_eq!(sharded, oracle, "island churn diverged at shards={shards}");
    }
}

/// Large-swarm release-mode churn smoke on the sharded engine: 25 000
/// nodes on partitioned islands at `shards = 4`, encoded frames,
/// asserted identical to the `shards = 1` run of the same spec.
/// `#[ignore]`d so plain `cargo test` stays fast; CI runs it via
/// `cargo test --release -q --test shard_churn -- --ignored`.
#[test]
#[ignore = "release-mode large-swarm sharded churn smoke, run explicitly (CI does)"]
fn sharded_churn_25k_matches_single_shard() {
    let collect = |shards: usize| {
        let mut spec = ChurnSpec::standard(25_000, SchedulerMode::Calendar).with_shards(shards);
        spec.delivery = DeliveryMode::EncodedFrames;
        let started = Instant::now();
        let (mut sim, mut mobility) = build_churn_swarm_sharded(&spec);
        drive_churn(&mut sim, &mut mobility, &spec);
        let elapsed = started.elapsed();
        let summary = SwarmSummary::collect_sharded(&sim);
        let matches = sim.app(NodeId::new(0)).matches().to_vec();
        println!(
            "25k churn @ shards={shards}: wall {elapsed:?}, {} matches, {} refloods, \
             per-shard nodes {:?}",
            summary.matches,
            summary.refloods,
            sim.shard_node_counts(),
        );
        assert!(elapsed.as_secs() < 600, "25k sharded churn took {elapsed:?}");
        (summary, sim.metrics().without_queue_pressure(), sim.now_us(), matches)
    };
    let single = collect(1);
    let sharded = collect(4);
    assert_eq!(sharded, single, "25k churn diverged between shards=1 and shards=4");
    assert!(single.0.matches > 0, "25k churn swarm found no matches: {:?}", single.0);
    assert!(single.0.refloods > 10_000, "re-flooding must run swarm-wide: {:?}", single.0);
}

/// Half-million-node churn smoke on the halo-sharded engine: proves
/// the memory model (per-shard resident state is owned tiles + fringe,
/// not a full replica) holds at scale and that cross-shard envelope
/// batching actually engages. The bit-identity claim itself is
/// oracle-asserted at reduced scale in the same run — a 2 000-node
/// slice of the identical spec compared against `shards = 1` — because
/// a 500k oracle run would double the wall time for no extra
/// statistical power (the engine has no scale-dependent branches).
/// `#[ignore]`d; CI runs it via
/// `cargo test --release -q --test shard_churn -- --ignored`.
#[test]
#[ignore = "release-mode 500k-node sharded churn smoke, run explicitly (CI does)"]
fn sharded_churn_500k_smoke() {
    // 6 s horizon: one 5 s re-flood round fires, the 40 s default would
    // octuple the wall time without exercising anything new.
    let spec = |n: usize, shards: usize| {
        ChurnSpec::standard(n, SchedulerMode::Calendar).with_shards(shards).with_duration(6)
    };

    // Reduced-scale oracle assertion: same spec shape, 2k nodes.
    let reduced = |shards: usize| {
        let spec = spec(2_000, shards);
        let (mut sim, mut mobility) = build_churn_swarm_sharded(&spec);
        drive_churn(&mut sim, &mut mobility, &spec);
        (SwarmSummary::collect_sharded(&sim), sim.metrics().without_queue_pressure(), sim.now_us())
    };
    let oracle = reduced(1);
    assert_eq!(reduced(8), oracle, "2k reduced-scale slice diverged between shards=1 and 8");

    // The 500k run itself, with telemetry on so the halo gauges and
    // batching counters are observable.
    let spec = spec(500_000, 8);
    let started = Instant::now();
    let (mut sim, mut mobility) = build_churn_swarm_sharded(&spec);
    sim.enable_telemetry(64);
    drive_churn(&mut sim, &mut mobility, &spec);
    let elapsed = started.elapsed();
    let summary = SwarmSummary::collect_sharded(&sim);
    let resident = sim.shard_resident_bytes();
    let shared = sim.shared_topology_bytes();
    let metrics = sim.telemetry().metrics().clone();
    println!(
        "500k churn @ shards=8: wall {elapsed:?}, {} delivered, {} refloods, \
         per-shard nodes {:?}, per-shard resident KiB {:?}, shared topo {} KiB, \
         {} envelopes in {} batched sends",
        sim.metrics().delivered,
        summary.refloods,
        sim.shard_node_counts(),
        resident.iter().map(|b| b / 1024).collect::<Vec<_>>(),
        shared / 1024,
        metrics.counter_total("batch.envelopes"),
        metrics.counter_total("batch.sends"),
    );
    // Hang guard, not a perf target: ~570 s on the single-core CI
    // container, dominated by the t = 5 s swarm-wide re-flood wave.
    assert!(elapsed.as_secs() < 1500, "500k sharded churn took {elapsed:?}");
    assert!(sim.metrics().delivered > 0, "500k swarm delivered nothing");
    assert!(summary.refloods > 0, "re-flooding must fire at 500k");

    // Memory model: no shard holds a replica — the largest shard's
    // resident engine state (halo fragment + node arena) stays a
    // fraction of the whole, and the global topology is held once.
    let max = *resident.iter().max().unwrap();
    let total: u64 = resident.iter().sum();
    assert!(max * 2 < total, "one shard holds over half the resident state: max {max} of {total}");
    assert!(shared > 0, "shared topology snapshot must report its footprint");
    let spread = sim.shard_node_counts();
    assert!(spread.iter().all(|&c| c > 0), "empty shard at 500k: {spread:?}");

    // Telemetry observability: the halo gauges and batching counters
    // demanded by the memory-model work are all present and live.
    assert!(metrics.counter_total("batch.envelopes") > 0, "no cross-shard envelopes batched");
    assert!(metrics.counter_total("batch.sends") > 0, "no coalesced transfers recorded");
    assert!(
        (0..8).any(|s| metrics.gauge("shard.topo.resident_bytes", s) > 0),
        "shard.topo.resident_bytes gauge never recorded"
    );
    assert!(
        (0..8).any(|s| metrics.gauge("shard.halo.tiles", s) > 0),
        "shard.halo.tiles gauge never recorded"
    );
}
