//! Integration tests spanning the whole stack: protocols over the MANET
//! simulator, mobility, packet loss, multi-hop vicinity search.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sealed_bottle::core::protocol::{Parallelism, ResponderOutcome};
use sealed_bottle::net::mobility::{Bounds, RandomWaypoint};
use sealed_bottle::prelude::*;

fn attr(c: &str, v: &str) -> Attribute {
    Attribute::new(c, v)
}

fn request() -> RequestProfile {
    RequestProfile::new(
        vec![attr("guild", "cartographers")],
        vec![attr("i", "maps"), attr("i", "ink"), attr("i", "paper")],
        2,
    )
    .unwrap()
}

fn matching_profile() -> Profile {
    Profile::from_attributes(vec![
        attr("guild", "cartographers"),
        attr("i", "maps"),
        attr("i", "ink"),
    ])
}

fn noise(i: usize) -> Profile {
    Profile::from_attributes(vec![attr("noise", &format!("a{i}")), attr("noise", &format!("b{i}"))])
}

/// A 5-hop line: request floods out, reply routes back, channel works.
#[test]
fn five_hop_friending_all_protocols() {
    for kind in [ProtocolKind::P1, ProtocolKind::P2, ProtocolKind::P3] {
        let config = ProtocolConfig::new(kind, 11);
        let mut sim = Simulator::new(SimConfig::default(), 7);
        sim.add_node((0.0, 0.0), FriendingApp::initiator(noise(0), request(), config.clone()));
        for i in 1..5 {
            sim.add_node(
                (i as f64 * 45.0, 0.0),
                FriendingApp::participant(noise(i), config.clone()),
            );
        }
        sim.add_node(
            (5.0 * 45.0, 0.0),
            FriendingApp::participant(matching_profile(), config.clone()),
        );
        sim.start();
        sim.run();
        let app = sim.app(NodeId::new(0));
        assert_eq!(app.matches().len(), 1, "{kind:?}: {:?}", app.events);
        assert_eq!(app.matches()[0].responder, 5);

        // End-to-end secure channel across the confirmed match.
        let m = app.matches()[0];
        let mut ich = app.initiator_state().unwrap().pair_channel(&m);
        let target = sim.app(NodeId::new(5));
        let session = target
            .sessions()
            .iter()
            .find(|s| {
                // P2/P3 responders may hold several candidate sessions;
                // find the one whose channel authenticates.
                let mut ch = s.channel();
                let mut probe = app.initiator_state().unwrap().pair_channel(&m);
                ch.open(&probe.seal(b"probe")).is_ok()
            })
            .expect("one session must authenticate");
        let mut rch = session.channel();
        let frame = ich.seal(b"found you across five hops");
        assert_eq!(rch.open(&frame).unwrap(), b"found you across five hops");
    }
}

/// Lossy links: flooding is redundant, but the reply unicast is
/// all-or-nothing per hop — so individual rounds may fail. Across ten
/// deterministic seeds the majority must succeed, and losses must
/// actually occur.
#[test]
fn dense_mesh_with_packet_loss() {
    let mut successes = 0usize;
    let mut total_lost = 0u64;
    for seed in 0..10 {
        let config = ProtocolConfig::new(ProtocolKind::P1, 11);
        let sim_config = SimConfig { loss_rate: 0.05, ..SimConfig::default() };
        let mut sim = Simulator::new(sim_config, seed);
        sim.add_node((0.0, 0.0), FriendingApp::initiator(noise(0), request(), config.clone()));
        // A dense 5×5 grid, 30 m spacing: many redundant paths.
        for i in 0..25 {
            let pos = ((i % 5) as f64 * 30.0, (i / 5) as f64 * 30.0 + 30.0);
            sim.add_node(pos, FriendingApp::participant(noise(i + 1), config.clone()));
        }
        sim.add_node((60.0, 180.0), FriendingApp::participant(matching_profile(), config.clone()));
        sim.start();
        sim.run();
        successes += sim.app(NodeId::new(0)).matches().len();
        total_lost += sim.metrics().lost;
    }
    assert!(successes >= 6, "flood redundancy should usually win: {successes}/10");
    assert!(total_lost > 0, "loss must actually have occurred");
}

/// Mobility: users walk between two request rounds; the second round
/// reaches a node that was previously out of range.
#[test]
fn mobility_changes_reachability() {
    let config = ProtocolConfig::new(ProtocolKind::P1, 11);
    let mut sim = Simulator::new(SimConfig::default(), 3);
    sim.add_node((0.0, 0.0), FriendingApp::initiator(noise(0), request(), config.clone()));
    // The matching user starts unreachable (500 m away, no relays).
    let target =
        sim.add_node((500.0, 0.0), FriendingApp::participant(matching_profile(), config.clone()));
    sim.start();
    sim.run();
    assert!(sim.app(NodeId::new(0)).matches().is_empty(), "initially partitioned");

    // They walk into range; a fresh request round succeeds. (A new app
    // would normally re-flood; we inject the package directly to model
    // the second round.)
    sim.set_position(target, (40.0, 0.0));
    let mut rng = StdRng::seed_from_u64(1);
    let (mut initiator2, package) =
        Initiator::create(&request(), 0, &config, sim.now_us(), &mut rng);
    let responder = Responder::new(1, matching_profile(), &config);
    let outcome = responder.handle(&package, sim.now_us() + 1_000, &mut rng);
    let ResponderOutcome::Reply { reply, .. } = outcome else {
        panic!("in range now, must match");
    };
    assert_eq!(initiator2.process_reply(&reply, sim.now_us() + 2_000).len(), 1);
}

/// The random-waypoint model keeps a 30-node swarm connected enough for
/// friending to succeed from a random snapshot.
#[test]
fn random_waypoint_snapshot_friending() {
    let mut mobility =
        RandomWaypoint::new(30, Bounds { width: 150.0, height: 150.0 }, 1.0, 2.0, 1.0, 8);
    mobility.advance(60.0); // let the swarm mix

    let config = ProtocolConfig::new(ProtocolKind::P2, 11);
    let mut sim = Simulator::new(SimConfig::default(), 44);
    let positions = mobility.positions();
    sim.add_node(positions[0], FriendingApp::initiator(noise(0), request(), config.clone()));
    for (i, &pos) in positions.iter().enumerate().skip(1).take(28) {
        sim.add_node(pos, FriendingApp::participant(noise(i), config.clone()));
    }
    sim.add_node(positions[29], FriendingApp::participant(matching_profile(), config.clone()));
    sim.start();
    sim.run();
    // The snapshot may or may not be connected; verify consistency:
    // a match is confirmed iff initiator and target are in the same
    // component.
    let components = sim.connected_components();
    let same_component =
        components.iter().any(|c| c.contains(&NodeId::new(0)) && c.contains(&NodeId::new(29)));
    let matched = !sim.app(NodeId::new(0)).matches().is_empty();
    assert_eq!(matched, same_component, "match iff reachable");
}

/// Vicinity search across the simulator: only the physically nearby
/// peer is confirmed even though all peers hear the flood.
#[test]
fn vicinity_search_over_network() {
    let lattice = LatticeConfig::new((0.0, 0.0), 10.0);
    let config = ProtocolConfig::new(ProtocolKind::P2, 37);
    let mut rng = StdRng::seed_from_u64(21);
    let (mut searcher, package, _region) =
        create_vicinity_request(&lattice, (0.0, 0.0), 20.0, 9.0 / 19.0, 0, &config, 0, &mut rng);

    // Peer A is physically near (10 m), peer B far (300 m) — but note
    // both *hear* the request (radio reaches further than vicinity).
    let (near, _) = vicinity_responder(&lattice, (10.0, 0.0), 20.0, 1, &config);
    let (far, _) = vicinity_responder(&lattice, (300.0, 0.0), 20.0, 2, &config);
    for (responder, should_match) in [(near, true), (far, false)] {
        match responder.handle(&package, 1_000, &mut rng) {
            ResponderOutcome::Reply { reply, .. } => {
                let ok = !searcher.process_reply(&reply, 2_000).is_empty();
                assert_eq!(ok, should_match);
            }
            _ => assert!(!should_match),
        }
    }
    assert_eq!(searcher.matches().len(), 1);
}

/// Differential: a batched, multi-threaded responder chunk produces the
/// same match decisions and byte-identical wire replies as the existing
/// one-at-a-time single-threaded run — for all three protocols.
#[test]
fn batched_parallel_responder_matches_sequential_run() {
    for kind in [ProtocolKind::P1, ProtocolKind::P2, ProtocolKind::P3] {
        let mut seq_config = ProtocolConfig::new(kind, 11);
        seq_config.parallelism = Parallelism::SEQUENTIAL;
        let mut par_config = ProtocolConfig::new(kind, 11);
        par_config.parallelism = Parallelism::new(4);

        // A chunk of requests from distinct initiators: half match the
        // responder's profile, half don't.
        let mut pkg_rng = StdRng::seed_from_u64(31);
        let mut initiators = Vec::new();
        let mut packages = Vec::new();
        for i in 0..6usize {
            let req = if i % 2 == 0 {
                request()
            } else {
                RequestProfile::new(
                    vec![attr("guild", &format!("other-{i}"))],
                    vec![attr("i", "maps"), attr("i", "ink"), attr("i", "paper")],
                    2,
                )
                .unwrap()
            };
            let (ini, pkg) = Initiator::create(&req, 10 + i as u32, &seq_config, 0, &mut pkg_rng);
            initiators.push(ini);
            packages.push(pkg);
        }

        let seq_responder = Responder::new(1, matching_profile(), &seq_config);
        let par_responder = Responder::new(1, matching_profile(), &par_config);
        let mut seq_rng = StdRng::seed_from_u64(77);
        let mut par_rng = StdRng::seed_from_u64(77);
        let seq: Vec<ResponderOutcome> =
            packages.iter().map(|p| seq_responder.handle(p, 1_000, &mut seq_rng)).collect();
        let par = par_responder.handle_batch(&packages, 1_000, &mut par_rng);

        assert_eq!(seq.len(), par.len());
        let mut replies = 0usize;
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            match (a, b) {
                (
                    ResponderOutcome::Reply { reply: ra, sessions: sa, verified: va, stats: ta },
                    ResponderOutcome::Reply { reply: rb, sessions: sb, verified: vb, stats: tb },
                ) => {
                    replies += 1;
                    assert_eq!(ra.encode(), rb.encode(), "{kind:?}: wire bytes differ at {i}");
                    assert_eq!(va, vb, "{kind:?}: verified flag differs at {i}");
                    assert_eq!(ta, tb, "{kind:?}: enumeration stats differ at {i}");
                    assert_eq!(sa.len(), sb.len());
                    for (x, y) in sa.iter().zip(sb) {
                        assert_eq!(x.x, y.x);
                        assert_eq!(x.y, y.y);
                        assert_eq!(x.recovered, y.recovered);
                    }
                }
                (ResponderOutcome::NotCandidate, ResponderOutcome::NotCandidate)
                | (ResponderOutcome::NoVerifiedMatch, ResponderOutcome::NoVerifiedMatch)
                | (ResponderOutcome::Expired, ResponderOutcome::Expired) => {}
                _ => panic!("{kind:?}: outcome shape differs at {i}: {a:?} vs {b:?}"),
            }
        }
        assert!(replies >= 3, "{kind:?}: the matching requests must draw replies");

        // Identical match decisions at every initiator.
        for (i, ini) in initiators.into_iter().enumerate() {
            if let (
                ResponderOutcome::Reply { reply: ra, .. },
                ResponderOutcome::Reply { reply: rb, .. },
            ) = (&seq[i], &par[i])
            {
                let mut seq_ini = ini.clone();
                let mut par_ini = ini;
                let confirmed_seq = seq_ini.process_reply(ra, 2_000);
                let confirmed_par = par_ini.process_reply(rb, 2_000);
                assert_eq!(confirmed_seq, confirmed_par, "{kind:?}: decision differs at {i}");
            }
        }
    }
}

/// The full pipeline on dataset-generated profiles: a requester built
/// from a real user's tags finds exactly the users sharing enough tags.
#[test]
fn dataset_driven_matching_agrees_with_ground_truth() {
    use sealed_bottle::dataset::{WeiboConfig, WeiboDataset};

    let data = WeiboDataset::generate(&WeiboConfig { users: 300, ..WeiboConfig::default() }, 55);
    let mut rng = StdRng::seed_from_u64(4);
    let users = data.users();
    let initiator_user = users.iter().find(|u| u.tags.len() == 6).expect("a 6-tag user");
    let beta = 3usize;

    let request = RequestProfile::threshold(initiator_user.tag_attributes(), beta).unwrap();
    let config = ProtocolConfig::new(ProtocolKind::P1, 11);
    let (mut initiator, package) = Initiator::create(&request, 0, &config, 0, &mut rng);

    let mut confirmed = 0usize;
    let mut expected = 0usize;
    for user in users.iter().filter(|u| u.id != initiator_user.id) {
        let profile = user.profile();
        if request.is_satisfied_by(&profile) {
            expected += 1;
        }
        let responder = Responder::new(user.id + 1, profile, &config);
        if let ResponderOutcome::Reply { reply, .. } = responder.handle(&package, 100, &mut rng) {
            confirmed += initiator.process_reply(&reply, 200).len();
        }
    }
    assert_eq!(confirmed, expected, "protocol must agree with ground truth");
}
