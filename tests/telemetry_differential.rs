//! The telemetry determinism contract, proven differentially: enabling
//! telemetry changes **no** oracle-verified byte.
//!
//! The matrix crosses protocol (P1/P2/P3) × shard count (1 = the
//! single-threaded oracle, 4 = the parallel engine) × matching threads
//! (1/4) × telemetry (off/on, with the process-global matching
//! registry installed), and asserts the full observable outcome —
//! per-node event logs, confirmed matches, masked metrics, final
//! clock — is bit-identical in every cell. A second suite pins the
//! telemetry *itself*: identical runs produce identical merged metric
//! sets and trace buffers, independent of worker-thread timing.
//!
//! (The histogram/metric-set monoid proptests live next to the
//! implementation in `crates/telemetry/tests/prop.rs`.)

use msb_bench::swarm::{build_churn_swarm_sharded, drive_churn, ChurnSpec};
use sealed_bottle::core::app::RefloodPolicy;
use sealed_bottle::core::protocol::Parallelism;
use sealed_bottle::net::mobility::{Bounds, RandomWaypoint};
use sealed_bottle::net::sim::{Metrics, SchedulerMode};
use sealed_bottle::prelude::*;
use sealed_bottle::telemetry::{MetricSet, TraceEvent};

fn attr(c: &str, v: &str) -> Attribute {
    Attribute::new(c, v)
}

fn request() -> RequestProfile {
    RequestProfile::new(
        vec![attr("guild", "mapmakers")],
        vec![attr("i", "ink"), attr("i", "vellum"), attr("i", "stars")],
        2,
    )
    .unwrap()
}

fn matching_profile() -> Profile {
    Profile::from_attributes(vec![attr("guild", "mapmakers"), attr("i", "ink"), attr("i", "stars")])
}

fn noise(i: usize) -> Profile {
    Profile::from_attributes(vec![attr("hobby", &format!("h{i}")), attr("town", &format!("t{i}"))])
}

#[derive(PartialEq, Debug)]
struct RunResult {
    /// `peak_queue_len` masked: per-queue depth legitimately depends on
    /// how many queues there are (same mask as the shard differential).
    metrics: Metrics,
    final_clock_us: u64,
    matches: Vec<ConfirmedMatch>,
    events: Vec<Vec<AppEvent>>,
}

/// The telemetry recorded by a run, in canonical merged form.
#[derive(PartialEq, Debug)]
struct Recorded {
    metrics: MetricSet,
    trace: Vec<TraceEvent>,
}

/// The `shard_churn` scenario — a lossy 4×4 grid under random-waypoint
/// churn with re-flooding — parameterized over shards, matching
/// threads, and the telemetry switch.
fn run(
    kind: ProtocolKind,
    shards: usize,
    threads: usize,
    telemetry: bool,
) -> (RunResult, Option<Recorded>) {
    let mut config = ProtocolConfig::new(kind, 11);
    config.parallelism =
        if threads == 1 { Parallelism::SEQUENTIAL } else { Parallelism::new(threads) };
    config.validity_us = 5_000_000;
    let sim_config = SimConfig {
        loss_rate: 0.02,
        delivery: DeliveryMode::EncodedFrames,
        shards,
        ..SimConfig::default()
    };
    let reflood = RefloodPolicy::every(400_000).with_fanout_cap(3);
    let mut positions: Vec<(f64, f64)> = vec![(0.0, 0.0)];
    let mut apps =
        vec![FriendingApp::initiator(noise(0), request(), config.clone()).with_reflood(reflood)];
    for i in 0..16 {
        positions.push(((i % 4) as f64 * 35.0, (i / 4) as f64 * 35.0 + 35.0));
        apps.push(FriendingApp::participant(noise(i + 1), config.clone()).with_reflood(reflood));
    }
    for &pos in &[(165.0, 40.0), (165.0, 160.0)] {
        positions.push(pos);
        apps.push(
            FriendingApp::participant(matching_profile(), config.clone()).with_reflood(reflood),
        );
    }
    let mut mobility = RandomWaypoint::from_positions(
        positions.clone(),
        Bounds { width: 260.0, height: 200.0 },
        6.0,
        20.0,
        0.5,
        0x5eed,
    );
    let nodes = positions.iter().copied().zip(apps);

    let drive = |sim: &mut dyn SimDriver, mobility: &mut RandomWaypoint| {
        sim.start();
        let mut buf = Vec::new();
        for tick in 1..=20u64 {
            sim.run_until(tick * 250_000);
            mobility.advance(0.25);
            mobility.positions_into(&mut buf);
            sim.set_positions(&buf);
        }
        sim.run();
    };

    if shards == 1 {
        let mut sim = Simulator::new(sim_config, 0xC0DEC);
        sim.add_nodes(nodes);
        if telemetry {
            sim.enable_telemetry(4096);
        }
        drive(&mut sim, &mut mobility);
        let recorded = telemetry.then(|| Recorded {
            metrics: sim.telemetry().metrics().clone(),
            trace: sim.telemetry().trace().iter().copied().collect(),
        });
        (
            RunResult {
                metrics: sim.metrics().without_queue_pressure(),
                final_clock_us: sim.now_us(),
                matches: sim.app(NodeId::new(0)).matches().to_vec(),
                events: (0..sim.node_count())
                    .map(|i| sim.app(NodeId::new(i as u32)).events.clone())
                    .collect(),
            },
            recorded,
        )
    } else {
        let mut sim = ShardedSimulator::new(sim_config, 0xC0DEC);
        sim.add_nodes(nodes);
        if telemetry {
            sim.enable_telemetry(4096);
        }
        drive(&mut sim, &mut mobility);
        let recorded = telemetry.then(|| {
            let merged = sim.telemetry();
            Recorded {
                metrics: merged.metrics().clone(),
                trace: merged.trace().iter().copied().collect(),
            }
        });
        (
            RunResult {
                metrics: sim.metrics().without_queue_pressure(),
                final_clock_us: sim.now_us(),
                matches: sim.app(NodeId::new(0)).matches().to_vec(),
                events: (0..sim.node_count())
                    .map(|i| sim.app(NodeId::new(i as u32)).events.clone())
                    .collect(),
            },
            recorded,
        )
    }
}

/// The load-bearing invariant: across every protocol × shard count ×
/// matching-thread count, the run with telemetry enabled (and the
/// process-global matching registry installed) produces byte-identical
/// outcomes to the run with telemetry off.
#[test]
fn telemetry_on_vs_off_bit_identical() {
    // Install the global matching registry once so the parallel
    // matching workers actually record into it during the "on" runs —
    // proving the scheduling-dependent series never leak into
    // deterministic state.
    sealed_bottle::telemetry::global::install();
    for kind in [ProtocolKind::P1, ProtocolKind::P2, ProtocolKind::P3] {
        for shards in [1usize, 4] {
            for threads in [1usize, 4] {
                let (off, none) = run(kind, shards, threads, false);
                assert!(none.is_none());
                let (on, recorded) = run(kind, shards, threads, true);
                assert_eq!(
                    on, off,
                    "{kind:?} shards={shards} threads={threads}: \
                     telemetry changed an oracle-verified byte"
                );
                let recorded = recorded.expect("telemetry was on");
                assert!(
                    recorded.metrics.counter_total("sim.pops") > 0
                        || recorded.metrics.counter_total("shard.pops") > 0,
                    "{kind:?} shards={shards}: telemetry recorded nothing"
                );
                if shards > 1 {
                    assert!(
                        !recorded.trace.is_empty(),
                        "{kind:?} shards={shards}: no window/stall spans traced"
                    );
                }
            }
        }
    }
}

/// Telemetry itself is deterministic: two identical runs produce the
/// same merged metric set and the same trace, event for event —
/// independent of worker-thread timing in the sharded engine.
#[test]
fn telemetry_identical_across_repeat_runs() {
    for shards in [1usize, 4] {
        let (_, a) = run(ProtocolKind::P1, shards, 4, true);
        let (_, b) = run(ProtocolKind::P1, shards, 4, true);
        assert_eq!(
            a.expect("on"),
            b.expect("on"),
            "shards={shards}: telemetry diverged between identical runs"
        );
    }
}

/// The protocol-phase tracer is a pure function of the event log: the
/// counters agree with the log's contents and repeat deterministically.
#[test]
fn protocol_phase_trace_matches_event_log() {
    use sealed_bottle::core::app::trace_protocol_phases;
    let (oracle, _) = run(ProtocolKind::P1, 1, 1, false);
    let mut rec = sealed_bottle::telemetry::Recorder::on(4096);
    for (node, events) in oracle.events.iter().enumerate() {
        trace_protocol_phases(node as u32, events, &mut rec);
    }
    let confirmed: u64 = oracle
        .events
        .iter()
        .flatten()
        .filter(|e| matches!(e, AppEvent::MatchConfirmed { .. }))
        .count() as u64;
    assert!(confirmed > 0, "scenario must confirm matches");
    assert_eq!(rec.metrics().counter_total("app.phase.match_confirmed"), confirmed);
    let sent: u64 = oracle
        .events
        .iter()
        .flatten()
        .filter(|e| matches!(e, AppEvent::RequestSent { .. }))
        .count() as u64;
    assert_eq!(rec.metrics().counter_total("app.phase.request_sent"), sent);
    // Every MatchConfirmed got a ProtocolPhase trace instant.
    assert_eq!(rec.trace().len(), confirmed as usize);
}

/// Release-mode large-swarm smoke: a 25 000-node churn swarm at
/// `shards = 4` with telemetry on matches the telemetry-off run of the
/// same spec exactly. `#[ignore]`d so plain `cargo test` stays fast;
/// CI runs it via
/// `cargo test --release -q --test telemetry_differential -- --ignored`.
#[test]
#[ignore = "release-mode large-swarm telemetry smoke, run explicitly (CI does)"]
fn telemetry_25k_churn_smoke_identical() {
    let collect = |telemetry: bool| {
        let mut spec = ChurnSpec::standard(25_000, SchedulerMode::Calendar).with_shards(4);
        spec.delivery = DeliveryMode::EncodedFrames;
        let (mut sim, mut mobility) = build_churn_swarm_sharded(&spec);
        if telemetry {
            sim.enable_telemetry(1 << 16);
        }
        drive_churn(&mut sim, &mut mobility, &spec);
        let summary = SwarmSummary::collect_sharded(&sim);
        let matches = sim.app(NodeId::new(0)).matches().to_vec();
        let recorded = telemetry.then(|| sim.telemetry());
        (summary, sim.metrics().without_queue_pressure(), sim.now_us(), matches, recorded)
    };
    let (s_off, m_off, t_off, matches_off, none) = collect(false);
    let (s_on, m_on, t_on, matches_on, recorded) = collect(true);
    assert!(none.is_none());
    assert_eq!((s_on, m_on, t_on, matches_on), (s_off, m_off, t_off, matches_off));
    let recorded = recorded.expect("telemetry was on");
    assert!(recorded.metrics().counter_total("shard.pops") > 0);
    assert!(!recorded.trace().is_empty(), "windows must be traced at 25k scale");
}
