//! No-panic fuzz tests for the wire codec: decoding arbitrary bytes,
//! bit-flipped frames, and truncated frames must always return a
//! `DecodeError` (or a valid message), never panic — for every message
//! kind. Strictness is fuzzed too: trailing garbage after a valid frame
//! and any truncation of one are always rejected.

mod wire_common;

use proptest::prelude::*;
use sealed_bottle::core::package::{Reply, RequestPackage};
use sealed_bottle::dataset::weibo::{WeiboDataset, WeiboUser};
use sealed_bottle::server::{
    Ack, Deposit, Fetch, Hello, InboxBatch, MetricsDump, MetricsReq, StatsReq, StatsSnapshot,
};
use sealed_bottle::wire::{peek_kind, split_frame, Message};

/// Runs every decoder in the workspace over `bytes`; the test passes as
/// long as none of them panics.
fn decode_all(bytes: &[u8]) {
    let _ = peek_kind(bytes);
    let _ = split_frame(bytes);
    let _ = RequestPackage::decode(bytes);
    let _ = Reply::decode(bytes);
    let _ = WeiboUser::decode(bytes);
    let _ = WeiboDataset::decode(bytes);
    let _ = Hello::decode(bytes);
    let _ = Deposit::decode(bytes);
    let _ = Fetch::decode(bytes);
    let _ = InboxBatch::decode(bytes);
    let _ = Ack::decode(bytes);
    let _ = StatsReq::decode(bytes);
    let _ = StatsSnapshot::decode(bytes);
    let _ = MetricsReq::decode(bytes);
    let _ = MetricsDump::decode(bytes);
}

/// Asserts that every decoder rejects `bytes`.
fn assert_all_reject(bytes: &[u8], context: &str) {
    assert!(RequestPackage::decode(bytes).is_err(), "request accepted {context}");
    assert!(Reply::decode(bytes).is_err(), "reply accepted {context}");
    assert!(WeiboUser::decode(bytes).is_err(), "user accepted {context}");
    assert!(WeiboDataset::decode(bytes).is_err(), "dataset accepted {context}");
    assert!(Hello::decode(bytes).is_err(), "hello accepted {context}");
    assert!(Deposit::decode(bytes).is_err(), "deposit accepted {context}");
    assert!(Fetch::decode(bytes).is_err(), "fetch accepted {context}");
    assert!(InboxBatch::decode(bytes).is_err(), "inbox accepted {context}");
    assert!(Ack::decode(bytes).is_err(), "ack accepted {context}");
    assert!(StatsReq::decode(bytes).is_err(), "stats-req accepted {context}");
    assert!(StatsSnapshot::decode(bytes).is_err(), "stats accepted {context}");
    assert!(MetricsReq::decode(bytes).is_err(), "metrics-req accepted {context}");
    assert!(MetricsDump::decode(bytes).is_err(), "metrics dump accepted {context}");
}

/// Deterministic exhaustive sweep: for every message kind, every
/// single-byte 0xFF flip decodes without panicking, and every proper
/// prefix is rejected by every decoder.
#[test]
fn exhaustive_flips_and_truncations() {
    for (name, bytes) in wire_common::all_fixtures() {
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0xFF;
            decode_all(&m);
        }
        for cut in 0..bytes.len() {
            decode_all(&bytes[..cut]);
            assert_all_reject(&bytes[..cut], &format!("({name} truncated to {cut})"));
        }
    }
}

proptest! {
    /// Arbitrary byte soup never panics any decoder.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        decode_all(&data);
    }

    /// A well-formed envelope over an arbitrary payload never panics —
    /// this drives the body decoders (not just the envelope check) with
    /// garbage of a consistent declared length.
    #[test]
    fn arbitrary_payload_behind_valid_envelope_never_panics(
        kind_choice in any::<prop::sample::Index>(),
        data in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let kinds =
            [0x01u8, 0x02, 0x10, 0x11, 0x20, 0x21, 0x22, 0x23, 0x24, 0x25, 0x26, 0x27, 0x28];
        let mut frame = b"MSBW".to_vec();
        frame.push(1); // version
        frame.push(kinds[kind_choice.index(kinds.len())]);
        frame.extend_from_slice(&(data.len() as u32).to_be_bytes());
        frame.extend_from_slice(&data);
        decode_all(&frame);
    }

    /// Single-bit mutations of valid frames never panic.
    #[test]
    fn bit_flips_never_panic(
        which in any::<prop::sample::Index>(),
        byte in any::<prop::sample::Index>(),
        bit in any::<prop::sample::Index>(),
    ) {
        let fixtures = wire_common::all_fixtures();
        let (_, bytes) = &fixtures[which.index(fixtures.len())];
        let mut flipped = bytes.clone();
        let i = byte.index(flipped.len());
        flipped[i] ^= 1 << bit.index(8);
        decode_all(&flipped);
    }

    /// Trailing garbage after any valid frame is rejected by every
    /// decoder (the strict-framing guarantee).
    #[test]
    fn trailing_garbage_always_rejected(
        which in any::<prop::sample::Index>(),
        tail in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let fixtures = wire_common::all_fixtures();
        let (name, bytes) = &fixtures[which.index(fixtures.len())];
        let mut extended = bytes.clone();
        extended.extend_from_slice(&tail);
        assert_all_reject(&extended, &format!("({name} + {} trailing bytes)", tail.len()));
    }

    /// Random truncations of any valid frame are rejected by every
    /// decoder.
    #[test]
    fn truncations_always_rejected(
        which in any::<prop::sample::Index>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let fixtures = wire_common::all_fixtures();
        let (name, bytes) = &fixtures[which.index(fixtures.len())];
        let cut = cut.index(bytes.len()); // strictly shorter than the frame
        assert_all_reject(&bytes[..cut], &format!("({name} truncated to {cut})"));
    }
}
