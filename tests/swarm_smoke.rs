//! Swarm-scale end-to-end runs over the spatially-indexed simulator.
//!
//! Two layers of assurance:
//!
//! 1. an application-level differential oracle — the full friending flow
//!    (flooding, fast check, candidate keys, replies, confirmations) over
//!    a few hundred nodes must be *bit-identical* between the hex-grid
//!    index and the naive linear scan: same per-node event logs, same
//!    matches, same metrics (modulo `cells_scanned`, which measures index
//!    work), same final clock;
//! 2. an `#[ignore]`d release-mode smoke test (run explicitly in CI)
//!    proving a 5 000-node swarm completes in bounded time with matches
//!    confirmed and index efficiency holding.

use msb_bench::swarm::build_uniform_swarm;
use sealed_bottle::net::sim::Metrics;
use sealed_bottle::prelude::*;
use std::time::Instant;

/// The shared scalability scenario ([`msb_bench::swarm`]) at a 200-hop
/// flood TTL so the request spans the whole constant-density area.
fn build_swarm(n: usize, mode: SpatialMode, seed: u64) -> Simulator<FriendingApp> {
    build_uniform_swarm(n, mode, seed, 200)
}

fn run_swarm(
    n: usize,
    mode: SpatialMode,
    seed: u64,
) -> (Vec<Vec<AppEvent>>, Vec<ConfirmedMatch>, Metrics, u64) {
    let mut sim = build_swarm(n, mode, seed);
    sim.start();
    sim.run();
    let events = (0..n).map(|i| sim.app(NodeId::new(i as u32)).events.clone()).collect::<Vec<_>>();
    let matches = sim.app(NodeId::new(0)).matches().to_vec();
    (events, matches, *sim.metrics(), sim.now_us())
}

/// The friending application, end to end, is bit-identical across
/// spatial modes.
#[test]
fn friending_swarm_identical_across_spatial_modes() {
    let n = 300;
    for seed in [3u64, 0xACE] {
        let (ev_i, matches_i, m_i, clock_i) = run_swarm(n, SpatialMode::HexIndex, seed);
        let (ev_n, matches_n, m_n, clock_n) = run_swarm(n, SpatialMode::NaiveScan, seed);
        assert!(!matches_i.is_empty(), "seed {seed}: the swarm must produce matches");
        assert_eq!(ev_i, ev_n, "seed {seed}: per-node event logs diverged");
        assert_eq!(matches_i, matches_n, "seed {seed}: confirmed matches diverged");
        assert_eq!(clock_i, clock_n, "seed {seed}: final clock diverged");
        assert_eq!(
            Metrics { cells_scanned: 0, ..m_i },
            m_n,
            "seed {seed}: transport metrics diverged"
        );
        assert!(m_i.cells_scanned > 0);
    }
}

/// Large-swarm release-mode smoke: 5 000 nodes, full friending flow,
/// bounded runtime. `#[ignore]`d so plain `cargo test` stays fast; CI
/// runs it via `cargo test --release --test swarm_smoke -- --ignored`.
#[test]
#[ignore = "release-mode large-swarm smoke, run explicitly (CI does)"]
fn swarm_5k_completes_in_bounded_time() {
    let started = Instant::now();
    let mut sim = build_swarm(5_000, SpatialMode::HexIndex, 77);
    sim.start();
    sim.run();
    let elapsed = started.elapsed();
    let summary = SwarmSummary::collect(&sim);
    let metrics = sim.metrics();
    assert!(summary.matches > 0, "5k swarm found no matches: {summary:?}");
    assert!(summary.relays > 1_000, "flood must spread swarm-wide: {summary:?}");
    // Index efficiency: cells per query is a density constant, not a
    // function of swarm size (the naive scan would touch 5 000 nodes per
    // query here).
    let cells_per_query = metrics.cells_scanned as f64 / metrics.neighbor_queries as f64;
    assert!(
        cells_per_query < 40.0,
        "index degenerated: {cells_per_query:.1} cells/query, {metrics:?}"
    );
    // Generous wall-clock bound: catches an accidental return to O(n²)
    // (which takes minutes at this scale) without flaking on slow CI.
    assert!(elapsed.as_secs() < 180, "5k swarm took {elapsed:?}");
    println!(
        "5k swarm: wall {elapsed:?}, {} matches (p50 {:?} us), {} broadcasts, {:.1} cells/query",
        summary.matches,
        summary.latency_percentile_us(0.5),
        metrics.broadcasts,
        cells_per_query,
    );
}
